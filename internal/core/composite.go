package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/composite"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/trace"
)

// Composite (temporal) profiles: the subscription side registers the
// profile's primitive steps with the ordinary matcher (marked with
// CompositeOf/CompositeStep) and its state machine with the composite
// engine; the match path routes step hits to the engine instead of the
// delivery pipeline; engine firings come back through emitComposite as
// synthesized notifications. Routing layers see only the union of the
// primitive steps (Profile.Expr), so multicast covers and content digests
// keep pruning correctly without temporal knowledge.

// SubscribeComposite registers a composite profile written in the temporal
// wrapper grammar, e.g.
//
//	SEQUENCE (collection = "H.C" AND event.type = "documents-added")
//	    THEN (event.type = "collection-rebuilt") WITHIN 24h
//	COUNT 10 OF (collection = "H.C") WITHIN 7d
//	DIGEST (collection = "H.C") EVERY 24h
//
// The profile's ID is assigned by the service and returned.
func (s *Service) SubscribeComposite(client, src string) (string, error) {
	_, c, err := profile.ParseText(src)
	if err != nil {
		return "", err
	}
	if c == nil {
		return "", fmt.Errorf("core: %q is not a composite expression (use Subscribe for primitive profiles)", src)
	}
	p, err := profile.NewComposite(s.nextID("p"), client, s.name, c)
	if err != nil {
		return "", err
	}
	return p.ID, s.addUserProfile(p)
}

// addCompositeProfile installs a composite profile: state machine first,
// then the primitive step profiles, then bookkeeping and routing
// advertisement. Re-adding an existing ID replaces it (the matcher's
// contract for primitive profiles, which snapshot restores rely on),
// dropping the previous registration's live state. Called from
// addUserProfile.
func (s *Service) addCompositeProfile(p *profile.Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	prev := s.compositeProfiles[p.ID]
	s.mu.Unlock()
	if prev != nil {
		if err := s.removeCompositeProfile(prev.Owner, prev); err != nil {
			return err
		}
	}
	if err := s.composite.Register(p, s.clock()); err != nil {
		return err
	}
	steps := p.StepProfiles()
	for i, sp := range steps {
		if err := s.matcher.Add(sp); err != nil {
			for _, prev := range steps[:i] {
				s.matcher.Remove(prev.ID)
			}
			s.composite.Remove(p.ID)
			return err
		}
	}
	s.mu.Lock()
	set := s.profilesByClient[p.Owner]
	if set == nil {
		set = make(map[string]bool)
		s.profilesByClient[p.Owner] = set
	}
	set[p.ID] = true
	s.compositeProfiles[p.ID] = p
	multicast := s.routing == RouteMulticast
	s.mu.Unlock()
	if multicast {
		// Best effort, as for primitive profiles: the groups of the union
		// expression cover every event any step could consume.
		_ = s.joinGroupsFor(context.Background(), p)
	}
	// Content mode advertises the union of the primitive steps; the
	// matcher now holds exactly those steps, so the incremental digest
	// merge and a full recompute agree.
	s.readvertiseOnChurn(p)
	return nil
}

// removeCompositeProfile tears a composite profile down. Called from
// Unsubscribe.
func (s *Service) removeCompositeProfile(client string, p *profile.Profile) error {
	if p.Owner != client {
		return fmt.Errorf("core: profile %q belongs to %q, not %q", p.ID, p.Owner, client)
	}
	s.composite.Remove(p.ID)
	for _, sp := range p.StepProfiles() {
		s.matcher.Remove(sp.ID)
	}
	s.mu.Lock()
	delete(s.compositeProfiles, p.ID)
	if set := s.profilesByClient[client]; set != nil {
		delete(set, p.ID)
		if len(set) == 0 {
			delete(s.profilesByClient, client)
		}
	}
	multicast := s.routing == RouteMulticast
	s.mu.Unlock()
	if multicast {
		s.leaveGroupsFor(context.Background(), p.ID)
	}
	s.readvertiseOnChurn(nil)
	s.replicateProfileRemove(client, p.ID)
	return nil
}

// CompositeProfileCount reports registered composite profiles.
func (s *Service) CompositeProfileCount() int { return s.composite.Len() }

// qosDigestPrefix namespaces the synthetic digest definitions the QoS
// degradation path registers in the composite engine, one per bulk profile
// whose traffic overflowed its quota. The prefix keeps them disjoint from
// real composite profile IDs; the firing's notification carries the
// original profile ID, so subscribers see a digest for the profile they
// subscribed.
const qosDigestPrefix = "qos-digest:"

// qosDigestID derives the synthetic digest ID coalescing a bulk profile's
// over-quota matches.
func qosDigestID(profileID string) string { return qosDigestPrefix + profileID }

// coalesceBulk folds one over-quota bulk-class match into the profile's
// pending digest, creating the digest definition on first overflow. The
// digest flushes on the composite tick once the controller's coalescing
// period elapses. tctx is the match's StageQoS span (outcome=coalesce):
// threading it — rather than a fresh ingest span — attributes the digest's
// accumulation dwell to the qos stage, where QoS-degraded latency belongs.
func (s *Service) coalesceBulk(profileID, owner string, ev *event.Event, docIDs []string, now time.Time, ctrl *qos.Controller, tctx trace.Context) {
	id := qosDigestID(profileID)
	s.composite.EnsureDigest(id, owner, ctrl.BulkDigestEvery(), now)
	s.composite.OnPrimitiveCtx(id, 0, ev, docIDs, now, tctx)
}

// emitComposite turns an engine firing into a synthesized notification on
// the delivery pipeline. The synthesized event is a local artefact: it is
// never disseminated over the GDS, never matched against profiles, and
// carries the identity of the last contributing event so clients can still
// tell which collection completed the composite.
func (s *Service) emitComposite(f composite.Firing) {
	if len(f.Events) == 0 {
		return
	}
	profileID := f.ProfileID
	class := qos.ClassNormal
	qosDigest := false
	if orig, ok := strings.CutPrefix(profileID, qosDigestPrefix); ok {
		// A QoS coalescing digest: deliver under the subscribed profile's
		// own ID, in the bulk class it degraded from.
		profileID = orig
		class = qos.ClassBulk
		qosDigest = true
	} else {
		s.mu.Lock()
		if p := s.compositeProfiles[f.ProfileID]; p != nil {
			class = p.Class
		}
		s.mu.Unlock()
	}
	last := f.Events[len(f.Events)-1]
	synth := &event.Event{
		ID:           s.nextID("comp"),
		Type:         event.TypeCompositeAlert,
		Collection:   last.Collection,
		Origin:       last.Origin,
		BuildVersion: last.BuildVersion,
		OccurredAt:   f.At,
	}
	// The fire span marks when the state machine completed; the gap back to
	// its parent (the ingest or coalesce span) is the engine's dwell, and
	// the gap forward to queue-wait is enqueue admission.
	var fctx trace.Context
	if f.Trace.Sampled() {
		fctx = s.tracer.Record(f.Trace, trace.StageComposite, time.Now(), 0,
			class.String(), trace.Attr{Key: "op", Value: "fire"}, trace.Attr{Key: "kind", Value: f.Kind.String()})
	}
	err := s.delivery.Enqueue(Notification{
		Client:       f.Owner,
		ProfileID:    profileID,
		Event:        synth,
		DocIDs:       f.DocIDs,
		Composite:    f.Kind.String(),
		Contributing: f.Events,
		Class:        class,
		At:           f.At,
		Trace:        fctx,
	})
	s.mu.Lock()
	if err != nil {
		s.stats.NotifyFailures++
	} else {
		s.stats.Notifications++
		if qosDigest {
			s.stats.QoSDigests++
		}
	}
	s.mu.Unlock()
}

// CompositeTick advances the composite engine's clock: expired windows are
// garbage-collected and due digests flushed as of at. Live deployments
// drive it from StartCompositeTicker; deterministic simulations call it
// directly (possibly with future times) instead of sleeping.
func (s *Service) CompositeTick(at time.Time) {
	s.composite.Tick(at)
}

// ErrTickerRunning reports a second StartCompositeTicker.
var ErrTickerRunning = errors.New("core: composite ticker already running")

// StartCompositeTicker runs CompositeTick on the interval until Close.
// Digest flush latency (and window-GC promptness) is bounded by the
// interval; gs-server defaults to one second.
func (s *Service) StartCompositeTicker(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("core: composite tick interval must be positive")
	}
	s.mu.Lock()
	if s.compTickStop != nil {
		s.mu.Unlock()
		return ErrTickerRunning
	}
	stop := make(chan struct{})
	s.compTickStop = stop
	s.mu.Unlock()
	s.compTickWG.Add(1)
	go func() {
		defer s.compTickWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				s.composite.Tick(s.clock())
			}
		}
	}()
	return nil
}

// stopCompositeTicker halts the ticker goroutine, if any; Close calls it.
func (s *Service) stopCompositeTicker() {
	s.mu.Lock()
	stop := s.compTickStop
	s.compTickStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		s.compTickWG.Wait()
	}
}
