package core

import (
	"fmt"

	"github.com/gsalert/gsalert/internal/profile"
)

// Replication hooks: a Service can stream its replicable state changes —
// profile (un)subscriptions including composite wrappers and auxiliaries,
// and dedup admissions — to a ReplicationSink (internal/replica's primary
// end), and apply the mirrored stream on a standby. Mailbox WAL activity
// replicates through the delivery pipeline's own observer
// (delivery.Pipeline.SetObserver); the service only covers the state it
// owns itself.

// ReplicationSink observes the service's replicable state changes. Hooks
// are invoked outside the service's locks, after the local mutation
// succeeded; implementations must tolerate concurrent calls.
type ReplicationSink interface {
	// ReplicateProfileAdd observes a registered profile: user, composite
	// wrapper or auxiliary. Composite step profiles are derived state and
	// never reported.
	ReplicateProfileAdd(p *profile.Profile)
	// ReplicateProfileRemove observes a removed profile. client is empty
	// for auxiliary profiles.
	ReplicateProfileRemove(client, profileID string)
	// ReplicateDedup observes an event ID admitted to the dedup window.
	ReplicateDedup(id string)
}

// SetReplicationSink installs (or clears, with nil) the replication sink.
// Only changes after the call are observed; internal/replica pairs it with
// a snapshot for a consistent starting point.
func (s *Service) SetReplicationSink(sink ReplicationSink) {
	s.mu.Lock()
	s.replSink = sink
	s.mu.Unlock()
}

func (s *Service) replicationSink() ReplicationSink {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replSink
}

func (s *Service) replicateProfileAdd(p *profile.Profile) {
	if sink := s.replicationSink(); sink != nil {
		sink.ReplicateProfileAdd(p)
	}
}

func (s *Service) replicateProfileRemove(client, profileID string) {
	if sink := s.replicationSink(); sink != nil {
		sink.ReplicateProfileRemove(client, profileID)
	}
}

func (s *Service) replicateDedup(id string) {
	if sink := s.replicationSink(); sink != nil {
		sink.ReplicateDedup(id)
	}
}

// ReplicaStats is the replication-role counters merged into ServiceStats by
// a registered provider (the primary or standby end of internal/replica).
type ReplicaStats struct {
	// Role is "primary", "standby" or "" (replication off).
	Role string
	// StreamSeq is the stream position: records sent (primary) or applied
	// (standby).
	StreamSeq uint64
	// Streamed counts records shipped (primary) or applied (standby).
	Streamed int64
	// Dropped counts records discarded while no standby was attached or
	// the stream was broken (primary only); a rejoin resyncs via snapshot.
	Dropped int64
	// Errors counts stream transport or apply failures.
	Errors int64
	// Snapshots counts full-state snapshots sent (primary) or applied
	// (standby).
	Snapshots int64
	// Resyncs counts snapshot catch-ups requested after a gap or apply
	// failure.
	Resyncs int64
	// Promoted reports a standby that has taken over as serving primary.
	Promoted bool
	// StreamLag is the primary's unconfirmed stream window: records
	// streamed past the standby's last acknowledged position. Zero on
	// standbys. The health plane alerts on sustained lag.
	StreamLag uint64
}

// ReplicaStatsProvider supplies ReplicaStats snapshots for Stats merging.
type ReplicaStatsProvider interface {
	ReplicaStats() ReplicaStats
}

// SetReplicaStatsProvider registers the replication end whose counters
// Stats() should report.
func (s *Service) SetReplicaStatsProvider(p ReplicaStatsProvider) {
	s.mu.Lock()
	s.replStats = p
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Standby-side apply

// ApplyReplicatedProfile installs a profile received from the replication
// stream or a snapshot: user and composite profiles register exactly as
// local subscriptions do (replacing an existing ID), auxiliary profiles go
// to the auxiliary matcher.
func (s *Service) ApplyReplicatedProfile(p *profile.Profile) error {
	switch p.Kind {
	case profile.KindUser:
		return s.addUserProfile(p)
	case profile.KindAuxiliary:
		return s.aux.Add(p)
	default:
		return fmt.Errorf("core: replicated profile %s has unknown kind", p.ID)
	}
}

// ApplyReplicatedUnsubscribe removes a profile per a replicated
// unsubscription. An empty client names an auxiliary profile.
func (s *Service) ApplyReplicatedUnsubscribe(client, profileID string) error {
	if client == "" {
		s.aux.Remove(profileID)
		return nil
	}
	return s.Unsubscribe(client, profileID)
}

// ObserveDedup admits a replicated event ID to the dedup window, reporting
// whether it was already present.
func (s *Service) ObserveDedup(id string) bool {
	return s.dedup.Observe(id)
}

// DedupIDs exports the dedup window in admission order (snapshots).
func (s *Service) DedupIDs() []string {
	return s.dedup.IDs()
}

// ResetDedup clears the dedup window (before a snapshot apply).
func (s *Service) ResetDedup() {
	s.dedup.Reset()
}

// IDSeq reports the profile-ID counter, streamed so a promoted standby
// never mints an ID the primary already used.
func (s *Service) IDSeq() uint64 {
	return s.idCounter.Load()
}

// SeedIDCounter raises the profile-ID counter to at least n.
func (s *Service) SeedIDCounter(n uint64) {
	for {
		cur := s.idCounter.Load()
		if cur >= n || s.idCounter.CompareAndSwap(cur, n) {
			return
		}
	}
}

// ResetSubscriptions removes every user, composite and auxiliary profile —
// the blank slate before a snapshot apply. The teardown goes through the
// ordinary unsubscribe paths so multicast/content bookkeeping stays
// consistent (a passive standby in broadcast mode touches no directory
// state).
func (s *Service) ResetSubscriptions() {
	s.mu.Lock()
	composites := make([]*profile.Profile, 0, len(s.compositeProfiles))
	for _, p := range s.compositeProfiles {
		composites = append(composites, p)
	}
	s.mu.Unlock()
	for _, p := range composites {
		_ = s.removeCompositeProfile(p.Owner, p)
	}
	for _, p := range s.matcher.All() {
		if p.CompositeOf != "" {
			continue // torn down with its parent above
		}
		_ = s.Unsubscribe(p.Owner, p.ID)
	}
	for _, p := range s.aux.All() {
		s.aux.Remove(p.ID)
	}
}
