package core

import (
	"context"
	"fmt"
	"strings"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/trace"
)

// RoutingMode selects how events are disseminated through the GDS.
type RoutingMode int

// Routing modes.
const (
	// RouteBroadcast floods every event to every server (the paper's
	// primary design, §4.2).
	RouteBroadcast RoutingMode = iota + 1
	// RouteMulticast scopes dissemination to collection-interest groups:
	// each server joins the multicast group of every collection its
	// profiles cover, and publishers multicast instead of broadcasting.
	// Profiles without a finite collection cover put their server into the
	// catch-all group, which every publisher also addresses — so the mode
	// is an optimisation, never a correctness change (paper §6 names
	// multicast as a GDS capability; this is the ablation for it).
	RouteMulticast
	// RouteContent routes by profile content: the server advertises a
	// digest of its profile population (profile.Digest) to its GDS node,
	// directory nodes aggregate digests per tree link with covering-based
	// pruning, and published events descend only into subtrees whose digest
	// matches the event's attributes. Strictly finer-grained than
	// RouteMulticast (it can prune on event type, host or any event-level
	// predicate, not just the collection) at the cost of digest state in
	// the directory. See docs/ROUTING.md.
	RouteContent
)

// String names the mode as accepted by ParseRoutingMode.
func (m RoutingMode) String() string {
	switch m {
	case RouteBroadcast:
		return "broadcast"
	case RouteMulticast:
		return "multicast"
	case RouteContent:
		return "content"
	default:
		return fmt.Sprintf("mode-%d", int(m))
	}
}

// ParseRoutingMode inverts RoutingMode.String (the gs-server -routing
// flag).
func ParseRoutingMode(s string) (RoutingMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "broadcast", "flood":
		return RouteBroadcast, nil
	case "multicast":
		return RouteMulticast, nil
	case "content":
		return RouteContent, nil
	default:
		return 0, fmt.Errorf("core: unknown routing mode %q (want broadcast, multicast or content)", s)
	}
}

// catchAllGroup receives every event: members host profiles whose
// collection scope cannot be bounded.
const catchAllGroup = "gsalert.any"

// collGroup names the multicast group of one collection.
func collGroup(qualified string) string {
	return "coll:" + strings.ToLower(qualified)
}

// SetRoutingMode switches dissemination modes and tears the previous
// mode's directory state down eagerly: leaving multicast leaves every
// joined group (stale memberships would otherwise keep attracting
// traffic), leaving content routing withdraws the advertised digest.
// Switching to multicast (re)announces group memberships for every
// registered profile; switching to content routing advertises the current
// profile digest and floods for the configured warm-up window.
func (s *Service) SetRoutingMode(ctx context.Context, mode RoutingMode) error {
	if mode != RouteBroadcast && mode != RouteMulticast && mode != RouteContent {
		return fmt.Errorf("core: unknown routing mode %d", mode)
	}
	s.mu.Lock()
	prev := s.routing
	if prev == 0 {
		prev = RouteBroadcast
	}
	s.routing = mode
	if mode == RouteContent {
		s.contentFloodUntil = s.clock().Add(s.contentWarmup)
	}
	s.mu.Unlock()
	s.log.Info("routing mode changed",
		logging.String("from", prev.String()), logging.String("to", mode.String()))
	if s.gdsCli == nil {
		return nil
	}
	if prev == RouteMulticast && mode != RouteMulticast {
		s.leaveAllGroups(ctx)
	}
	if prev == RouteContent && mode != RouteContent {
		s.mu.Lock()
		s.advertised = ""
		s.advertisedOnce = false
		s.mu.Unlock()
		_ = s.gdsCli.UnadvertiseProfiles(ctx) // best effort
	}
	switch mode {
	case RouteMulticast:
		// Join groups for the current profile population.
		for _, p := range s.matcher.All() {
			if err := s.joinGroupsFor(ctx, p); err != nil {
				return err
			}
		}
	case RouteContent:
		return s.advertiseProfiles(ctx, nil)
	}
	return nil
}

// leaveAllGroups eagerly leaves every multicast group this server joined,
// clearing the per-profile bookkeeping.
func (s *Service) leaveAllGroups(ctx context.Context) {
	s.mu.Lock()
	var leave []string
	for g := range s.groupRefs {
		leave = append(leave, g)
	}
	s.groupRefs = nil
	s.groupsByProfile = nil
	s.mu.Unlock()
	sortStrings(leave)
	for _, g := range leave {
		_ = s.gdsCli.LeaveGroup(ctx, g) // best effort
	}
}

// RoutingMode reports the current mode.
func (s *Service) RoutingMode() RoutingMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.routing == 0 {
		return RouteBroadcast
	}
	return s.routing
}

// joinGroupsFor subscribes this server to the groups covering p, with
// reference counting so unsubscribes can leave groups precisely.
func (s *Service) joinGroupsFor(ctx context.Context, p *profile.Profile) error {
	if s.gdsCli == nil {
		return nil
	}
	groups := s.groupsOf(p)
	for _, g := range groups {
		s.mu.Lock()
		if s.groupRefs == nil {
			s.groupRefs = make(map[string]int)
		}
		s.groupRefs[g]++
		first := s.groupRefs[g] == 1
		s.mu.Unlock()
		if first {
			if err := s.gdsCli.JoinGroup(ctx, g); err != nil {
				return fmt.Errorf("core: join %s: %w", g, err)
			}
		}
	}
	s.mu.Lock()
	if s.groupsByProfile == nil {
		s.groupsByProfile = make(map[string][]string)
	}
	s.groupsByProfile[p.ID] = groups
	s.mu.Unlock()
	return nil
}

// leaveGroupsFor drops group memberships owned by a removed profile.
func (s *Service) leaveGroupsFor(ctx context.Context, profileID string) {
	if s.gdsCli == nil {
		return
	}
	s.mu.Lock()
	groups := s.groupsByProfile[profileID]
	delete(s.groupsByProfile, profileID)
	var leave []string
	for _, g := range groups {
		s.groupRefs[g]--
		if s.groupRefs[g] <= 0 {
			delete(s.groupRefs, g)
			leave = append(leave, g)
		}
	}
	s.mu.Unlock()
	for _, g := range leave {
		_ = s.gdsCli.LeaveGroup(ctx, g) // best effort
	}
}

// groupsOf computes the multicast groups covering a profile.
func (s *Service) groupsOf(p *profile.Profile) []string {
	cover, bounded := profile.CollectionCover(p.Expr)
	if !bounded {
		return []string{catchAllGroup}
	}
	groups := make([]string, 0, len(cover))
	for _, c := range cover {
		groups = append(groups, collGroup(c))
	}
	return groups
}

// multicastEvent disseminates ev to its collection's group plus the
// catch-all group.
func (s *Service) multicastEvent(ctx context.Context, ev *event.Event, tctx trace.Context) error {
	raw, err := ev.MarshalXMLBytes()
	if err != nil {
		return err
	}
	for _, group := range []string{collGroup(ev.Collection.String()), catchAllGroup} {
		inner, err := protocol.NewEnvelope(s.name, protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap(raw)})
		if err != nil {
			return err
		}
		stampTrace(inner, tctx)
		if err := s.gdsCli.Multicast(ctx, group, inner); err != nil {
			return err
		}
	}
	return nil
}
