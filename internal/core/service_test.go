package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

func newLocalService(t *testing.T) *Service {
	t.Helper()
	tr := transport.NewMemory(1)
	s, err := New(Config{
		ServerName: "Hamilton",
		ServerAddr: "addr:Hamilton",
		Transport:  tr,
		Resolver:   StaticResolver{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildAndPublish(t *testing.T, s *Service, store *collection.Store, name string, docs []*collection.Document) *collection.BuildResult {
	t.Helper()
	coll, err := store.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	res, err := coll.Build(docs, time.Now(), func() string {
		n++
		return name + "-ev-" + time.Now().Format("150405.000000000") + "-" + strings.Repeat("x", n)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PublishBuild(context.Background(), res); err != nil {
		t.Fatal(err)
	}
	drainService(t, s)
	return res
}

// drainService settles the asynchronous delivery pipeline so tests can
// assert on notifier contents deterministically.
func drainService(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.DrainDeliveries(ctx); err != nil {
		t.Fatalf("drain deliveries: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	tr := transport.NewMemory(1)
	if _, err := New(Config{Transport: tr}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := New(Config{ServerName: "X"}); err == nil {
		t.Error("missing transport accepted")
	}
}

func TestSubscribeNotifyUnsubscribe(t *testing.T) {
	s := newLocalService(t)
	sink := NewMemoryNotifier()
	s.RegisterNotifier("alice", sink)

	id, err := s.Subscribe("alice", profile.MustParse(`collection = "Hamilton.D" AND dc.Creator = "Smith"`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ProfilesOf("alice"); len(got) != 1 || got[0] != id {
		t.Errorf("ProfilesOf = %v", got)
	}

	store := collection.NewStore("Hamilton")
	_, _ = store.Add(collection.Config{Name: "D", Public: true})
	buildAndPublish(t, s, store, "D", []*collection.Document{
		{ID: "d1", Metadata: map[string][]string{"dc.Creator": {"Smith"}}},
		{ID: "d2", Metadata: map[string][]string{"dc.Creator": {"Jones"}}},
	})

	if sink.Len() != 1 {
		t.Fatalf("notifications = %d, want 1", sink.Len())
	}
	n := sink.All()[0]
	if n.Client != "alice" || n.ProfileID != id {
		t.Errorf("notification = %+v", n)
	}
	if len(n.DocIDs) != 1 || n.DocIDs[0] != "d1" {
		t.Errorf("doc ids = %v", n.DocIDs)
	}
	if n.Event.Type != event.TypeCollectionBuilt {
		t.Errorf("event type = %v", n.Event.Type)
	}

	// Unsubscribe: subsequent builds do not notify.
	if err := s.Unsubscribe("alice", id); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	buildAndPublish(t, s, store, "D", []*collection.Document{
		{ID: "d3", Metadata: map[string][]string{"dc.Creator": {"Smith"}}},
	})
	if sink.Len() != 0 {
		t.Errorf("notified after unsubscribe: %+v", sink.All())
	}
}

func TestUnsubscribeOwnership(t *testing.T) {
	s := newLocalService(t)
	id, _ := s.Subscribe("alice", profile.MustParse(`collection = "X.Y"`))
	if err := s.Unsubscribe("mallory", id); err == nil {
		t.Error("foreign unsubscribe accepted")
	}
	if err := s.Unsubscribe("alice", "no-such"); err == nil {
		t.Error("unknown profile unsubscribe accepted")
	}
	if err := s.Unsubscribe("alice", id); err != nil {
		t.Errorf("own unsubscribe failed: %v", err)
	}
}

func TestSubscribeQueryAndWatch(t *testing.T) {
	s := newLocalService(t)
	sink := NewMemoryNotifier()
	s.RegisterNotifier("bob", sink)
	coll := event.QName{Host: "Hamilton", Collection: "D"}

	qid, err := s.SubscribeQuery("bob", coll, "", "whale AND songs")
	if err != nil {
		t.Fatal(err)
	}
	wid, err := s.WatchDocuments("bob", coll, []string{"d9"})
	if err != nil {
		t.Fatal(err)
	}
	if s.UserProfileCount() != 2 {
		t.Fatalf("profiles = %d", s.UserProfileCount())
	}

	store := collection.NewStore("Hamilton")
	_, _ = store.Add(collection.Config{Name: "D", Public: true})
	buildAndPublish(t, s, store, "D", []*collection.Document{
		{ID: "d1", Content: "humpback whale songs at sea"},
		{ID: "d9", Content: "unrelated content"},
	})

	byProfile := map[string]int{}
	for _, n := range sink.All() {
		byProfile[n.ProfileID]++
	}
	if byProfile[qid] != 1 {
		t.Errorf("query profile notifications = %d", byProfile[qid])
	}
	if byProfile[wid] != 1 {
		t.Errorf("watch profile notifications = %d", byProfile[wid])
	}

	if _, err := s.SubscribeQuery("bob", coll, "", "((("); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := s.WatchDocuments("bob", coll, nil); err == nil {
		t.Error("empty watch accepted")
	}
}

func TestDuplicateEventSuppressed(t *testing.T) {
	s := newLocalService(t)
	sink := NewMemoryNotifier()
	s.RegisterNotifier("alice", sink)
	_, _ = s.Subscribe("alice", profile.MustParse(`collection = "Hamilton.D"`))

	ev := event.New("fixed-id", event.TypeCollectionRebuilt,
		event.QName{Host: "Hamilton", Collection: "D"}, 2, nil, time.Now())
	raw, _ := ev.MarshalXMLBytes()
	env := protocol.MustEnvelope("gds-node", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap(raw)})

	for i := 0; i < 3; i++ {
		if err := s.HandleEventEnvelope(context.Background(), env); err != nil {
			t.Fatal(err)
		}
	}
	drainService(t, s)
	if sink.Len() != 1 {
		t.Fatalf("notifications = %d, want 1 (dedup)", sink.Len())
	}
	if st := s.Stats(); st.DuplicatesDropped != 2 {
		t.Errorf("duplicates dropped = %d", st.DuplicatesDropped)
	}
}

// TestOfflineClientParksAndDrainsOnRegister covers the delivery pipeline's
// reconnect semantics end to end through the service: notifications matched
// while a client has no registered notifier park in its mailbox and drain
// the moment the client registers one.
func TestOfflineClientParksAndDrainsOnRegister(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	_, _ = s.Subscribe("ghost", profile.MustParse(`collection = "Hamilton.D"`))
	store := collection.NewStore("Hamilton")
	_, _ = store.Add(collection.Config{Name: "D", Public: true})
	buildAndPublish(t, s, store, "D", []*collection.Document{{ID: "d1"}})
	// The notification is enqueued (counted), not lost and not delivered.
	if st := s.Stats(); st.Notifications == 0 {
		t.Error("offline match not enqueued")
	}
	if got := s.Delivery().Pending("ghost"); got == 0 {
		t.Fatal("offline notification not parked in mailbox")
	}
	// Reconnect: registering the notifier drains the mailbox.
	sink := NewMemoryNotifier()
	s.RegisterNotifier("ghost", sink)
	drainService(t, s)
	if sink.Len() == 0 {
		t.Fatal("parked notification not drained on register")
	}
	if got := s.Delivery().Pending("ghost"); got != 0 {
		t.Errorf("pending after drain = %d", got)
	}
}

func TestHandleForwardProfileValidation(t *testing.T) {
	s := newLocalService(t) // named Hamilton
	// Aux profile watching a collection NOT on this server is refused.
	p := profile.NewAuxiliary("aux:X.S>London.E",
		event.QName{Host: "X", Collection: "S"},
		event.QName{Host: "London", Collection: "E"})
	raw, _ := p.MarshalXMLBytes()
	env := protocol.MustEnvelope("X", protocol.MsgForwardProfile, &protocol.ForwardProfile{Profile: protocol.Wrap(raw)})
	if err := s.HandleForwardProfile(env); err == nil {
		t.Error("aux profile for foreign host accepted")
	}
	// Correct target installs.
	p2 := profile.NewAuxiliary("aux:X.S>Hamilton.E",
		event.QName{Host: "X", Collection: "S"},
		event.QName{Host: "Hamilton", Collection: "E"})
	raw2, _ := p2.MarshalXMLBytes()
	env2 := protocol.MustEnvelope("X", protocol.MsgForwardProfile, &protocol.ForwardProfile{Profile: protocol.Wrap(raw2)})
	if err := s.HandleForwardProfile(env2); err != nil {
		t.Fatal(err)
	}
	if s.AuxProfileCount() != 1 {
		t.Errorf("aux count = %d", s.AuxProfileCount())
	}
	// A user profile shipped as forward-profile is refused.
	up := profile.NewUser("u1", "alice", "X", profile.MustParse(`collection = "Hamilton.E"`))
	rawU, _ := up.MarshalXMLBytes()
	envU := protocol.MustEnvelope("X", protocol.MsgForwardProfile, &protocol.ForwardProfile{Profile: protocol.Wrap(rawU)})
	if err := s.HandleForwardProfile(envU); err == nil {
		t.Error("user profile accepted as aux")
	}
	// Cancel removes; cancelling twice is harmless.
	cancel := protocol.MustEnvelope("X", protocol.MsgCancelProfile, &protocol.CancelProfile{ProfileID: p2.ID})
	if err := s.HandleCancelProfile(cancel); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleCancelProfile(cancel); err != nil {
		t.Fatal(err)
	}
	if s.AuxProfileCount() != 0 {
		t.Errorf("aux count after cancel = %d", s.AuxProfileCount())
	}
}

func TestMemoryNotifierWatch(t *testing.T) {
	m := NewMemoryNotifier()
	ch := m.Watch()
	m.Notify(Notification{Client: "c", ProfileID: "p"})
	select {
	case n := <-ch:
		if n.ProfileID != "p" {
			t.Errorf("got %+v", n)
		}
	case <-time.After(time.Second):
		t.Fatal("watch channel empty")
	}
}

func TestStaticResolver(t *testing.T) {
	r := StaticResolver{"A": "addr:A"}
	if addr, err := r.Resolve(context.Background(), "A"); err != nil || addr != "addr:A" {
		t.Errorf("Resolve(A) = %q, %v", addr, err)
	}
	if _, err := r.Resolve(context.Background(), "B"); err == nil {
		t.Error("unknown name resolved")
	}
}
