package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
)

// publishDirect injects one event through the service's publish path.
func publishDirect(t *testing.T, s *Service, ev *event.Event) {
	t.Helper()
	if _, err := s.publishEvent(context.Background(), ev); err != nil {
		t.Fatal(err)
	}
}

func mkEvent(id string, typ event.Type, coll string) *event.Event {
	qn, _ := event.ParseQName(coll)
	return event.New(id, typ, qn, 1, nil, time.Unix(1117584000, 0))
}

func TestServiceCompositeSequence(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	sink := NewMemoryNotifier()
	s.RegisterNotifier("alice", sink)

	id, err := s.SubscribeComposite("alice",
		`SEQUENCE (collection = "Hamilton.D" AND event.type = "documents-added") THEN (collection = "Hamilton.D" AND event.type = "collection-rebuilt")`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ProfilesOf("alice"); len(got) != 1 || got[0] != id {
		t.Errorf("ProfilesOf = %v", got)
	}
	if s.CompositeProfileCount() != 1 {
		t.Errorf("composite count = %d", s.CompositeProfileCount())
	}

	publishDirect(t, s, mkEvent("e1", event.TypeDocumentsAdded, "Hamilton.D"))
	drainService(t, s)
	if sink.Len() != 0 {
		t.Fatalf("step-0 alone delivered %d notifications", sink.Len())
	}
	publishDirect(t, s, mkEvent("e2", event.TypeCollectionRebuilt, "Hamilton.D"))
	drainService(t, s)
	if sink.Len() != 1 {
		t.Fatalf("notifications = %d, want 1", sink.Len())
	}
	n := sink.All()[0]
	if n.Composite != "sequence" || n.ProfileID != id {
		t.Errorf("notification = %+v", n)
	}
	if n.Event.Type != event.TypeCompositeAlert {
		t.Errorf("synthesized event type = %v", n.Event.Type)
	}
	if len(n.Contributing) != 2 || n.Contributing[0].ID != "e1" || n.Contributing[1].ID != "e2" {
		t.Errorf("contributing = %v", n.Contributing)
	}
	st := s.Stats()
	if st.CompositeFirings != 1 || st.CompositePrimitives != 2 {
		t.Errorf("stats = %+v", st)
	}

	// Unsubscribe tears everything down: step profiles leave the matcher
	// and further events have no effect.
	if err := s.Unsubscribe("alice", id); err != nil {
		t.Fatal(err)
	}
	if s.CompositeProfileCount() != 0 || s.UserProfileCount() != 0 {
		t.Errorf("counts after unsubscribe = %d composite, %d user",
			s.CompositeProfileCount(), s.UserProfileCount())
	}
	publishDirect(t, s, mkEvent("e3", event.TypeDocumentsAdded, "Hamilton.D"))
	publishDirect(t, s, mkEvent("e4", event.TypeCollectionRebuilt, "Hamilton.D"))
	drainService(t, s)
	if sink.Len() != 1 {
		t.Errorf("unsubscribed composite still fired (%d notifications)", sink.Len())
	}
}

func TestServiceCompositeWindowExpiryViaTick(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	sink := NewMemoryNotifier()
	s.RegisterNotifier("alice", sink)
	if _, err := s.SubscribeComposite("alice",
		`SEQUENCE (event.type = "documents-added") THEN (event.type = "documents-removed") WITHIN 1h`); err != nil {
		t.Fatal(err)
	}
	publishDirect(t, s, mkEvent("e1", event.TypeDocumentsAdded, "Hamilton.D"))
	// Jump the engine clock past the window; the open instance expires.
	s.CompositeTick(time.Now().Add(2 * time.Hour))
	publishDirect(t, s, mkEvent("e2", event.TypeDocumentsRemoved, "Hamilton.D"))
	drainService(t, s)
	if sink.Len() != 0 {
		t.Fatalf("expired window fired (%d notifications)", sink.Len())
	}
	if st := s.Stats(); st.CompositeWindowsExpired != 1 || st.CompositeLiveInstances != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServiceCompositeDigestThroughPipeline(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	sink := NewMemoryNotifier()
	s.RegisterNotifier("alice", sink)
	if _, err := s.SubscribeComposite("alice",
		`DIGEST (collection = "Hamilton.D" AND event.type = "collection-rebuilt") EVERY 24h`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		publishDirect(t, s, mkEvent("r"+string(rune('0'+i)), event.TypeCollectionRebuilt, "Hamilton.D"))
	}
	drainService(t, s)
	if sink.Len() != 0 {
		t.Fatalf("digest leaked %d immediate notifications", sink.Len())
	}
	s.CompositeTick(time.Now().Add(25 * time.Hour))
	drainService(t, s)
	if sink.Len() != 1 {
		t.Fatalf("digest notifications = %d, want 1", sink.Len())
	}
	n := sink.All()[0]
	if n.Composite != "digest" || len(n.Contributing) != 3 {
		t.Errorf("digest notification = %+v", n)
	}
	if st := s.Stats(); st.CompositeDigestFlushes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCompositePersistenceRoundTrip: composite profiles survive a save/
// load cycle as their wrapper text; derived step profiles are not
// persisted (the restore re-derives them) and restored composites fire.
func TestCompositePersistenceRoundTrip(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	id, err := s.SubscribeComposite("alice",
		`COUNT 2 OF (collection = "Hamilton.D" AND event.type = "documents-added")`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe("alice", profile.MustParse(`collection = "Hamilton.D"`)); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := s.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "<ID>"); n != 2 {
		t.Fatalf("snapshot holds %d profiles, want 2 (steps must not be persisted):\n%s", n, buf.String())
	}

	s2 := newLocalService(t)
	defer s2.Close()
	restored, err := s2.LoadSubscriptions(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored = %d", restored)
	}
	if s2.CompositeProfileCount() != 1 {
		t.Fatalf("composite count after restore = %d", s2.CompositeProfileCount())
	}
	sink := NewMemoryNotifier()
	s2.RegisterNotifier("alice", sink)
	publishDirect(t, s2, mkEvent("a1", event.TypeDocumentsAdded, "Hamilton.D"))
	publishDirect(t, s2, mkEvent("a2", event.TypeDocumentsAdded, "Hamilton.D"))
	drainService(t, s2)
	fired := 0
	for _, n := range sink.All() {
		if n.ProfileID == id && n.Composite == "count" {
			fired++
		}
	}
	if fired != 1 {
		t.Errorf("restored composite fired %d times, want 1", fired)
	}

	// Loading the same snapshot again replaces, not errors (the matcher's
	// replace-on-duplicate-ID contract extends to composites).
	if _, err := s2.LoadSubscriptions(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("reload into populated service: %v", err)
	}
	if s2.CompositeProfileCount() != 1 {
		t.Errorf("composite count after reload = %d", s2.CompositeProfileCount())
	}
}

func TestUnsubscribeRejectsStepProfileID(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	id, err := s.SubscribeComposite("alice",
		`SEQUENCE (a = "1") THEN (b = "2")`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unsubscribe("alice", id+"#0"); err == nil {
		t.Fatal("unsubscribing a step profile succeeded")
	}
	// The composite is intact and still cancellable by its own ID.
	if s.CompositeProfileCount() != 1 || s.UserProfileCount() != 2 {
		t.Errorf("counts = %d composite, %d matcher profiles",
			s.CompositeProfileCount(), s.UserProfileCount())
	}
	if err := s.Unsubscribe("alice", id); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeSubscribeRejectsPrimitive(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	if _, err := s.SubscribeComposite("alice", `collection = "Hamilton.D"`); err == nil {
		t.Error("primitive expression accepted by SubscribeComposite")
	}
}

// TestSubscribeProfileCompositeWire exercises the wire path: a composite
// profile round-tripped through XML registers like a locally built one.
func TestSubscribeProfileCompositeWire(t *testing.T) {
	s := newLocalService(t)
	defer s.Close()
	sink := NewMemoryNotifier()
	s.RegisterNotifier("bob", sink)
	c := profile.MustParseComposite(`COUNT 2 OF (collection = "Hamilton.D" AND event.type = "documents-added")`)
	p, err := profile.NewComposite("wire-1", "bob", "Hamilton", c)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := p.MarshalXMLBytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := profile.UnmarshalXMLBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubscribeProfile(back); err != nil {
		t.Fatal(err)
	}
	publishDirect(t, s, mkEvent("a1", event.TypeDocumentsAdded, "Hamilton.D"))
	publishDirect(t, s, mkEvent("a2", event.TypeDocumentsAdded, "Hamilton.D"))
	drainService(t, s)
	if sink.Len() != 1 {
		t.Fatalf("notifications = %d, want 1", sink.Len())
	}
	if n := sink.All()[0]; n.Composite != "count" || n.ProfileID != "wire-1" {
		t.Errorf("notification = %+v", n)
	}
}
