package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/queue"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

// PublishBuild routes the events of a finished collection build: local
// filtering + notification, auxiliary-profile forwarding over the GS
// network, and GDS flooding. It returns the time spent in local filtering,
// the quantity experiment E1 compares against the index build time.
func (s *Service) PublishBuild(ctx context.Context, res *collection.BuildResult) (time.Duration, error) {
	var filterTime time.Duration
	for _, ev := range res.Events {
		d, err := s.publishEvent(ctx, ev)
		filterTime += d
		if err != nil {
			return filterTime, err
		}
	}
	return filterTime, nil
}

// publishEvent handles an event originating at this server (a local build
// or a transform of a forwarded event).
func (s *Service) publishEvent(ctx context.Context, ev *event.Event) (time.Duration, error) {
	// Mark as seen so the GDS broadcast echo (if any) is suppressed.
	if s.dedup.Observe(ev.ID) {
		s.mu.Lock()
		s.stats.DuplicatesDropped++
		s.mu.Unlock()
		return 0, nil
	}
	s.mu.Lock()
	s.stats.EventsPublished++
	s.mu.Unlock()

	// Root span of the event's end-to-end trace. Always timed — even when
	// head sampling passes — so the tail-retain rule can rescue slow
	// outliers; its context rides into the filter path and the disseminated
	// envelopes so every downstream hop chains onto the same trace.
	root := s.tracer.StartRoot(trace.StagePublish)
	root.SetAttr("event", ev.ID)
	tctx := root.Context()
	defer root.Finish()
	s.log.DebugCtx(tctx, "event published", logging.String("event", ev.ID))

	// 1. Local filtering + notification (+ aux matching), timed.
	filterTime := s.filterLocally(ev, tctx)

	// A promoted standby must keep suppressing duplicates of events the
	// primary already processed, so admissions replicate too — strictly
	// AFTER the notifications they produced: a crash between the two then
	// leaves the standby willing to re-filter the sender's retry
	// (duplicates, bounded), never holding a dedup entry for alerts it
	// doesn't have (loss).
	s.replicateDedup(ev.ID)

	// 2. Forward to super-collection hosts per matching aux profiles.
	s.forwardPerAuxProfiles(ctx, ev)

	// 3. Disseminate to other servers via the GDS (flooding by default,
	// interest-scoped multicast or content-based routing when enabled).
	if s.gdsCli != nil {
		disseminate := s.broadcastEvent
		switch s.RoutingMode() {
		case RouteMulticast:
			disseminate = s.multicastEvent
		case RouteContent:
			disseminate = s.contentRouteEvent
		}
		if err := disseminate(ctx, ev, tctx); err != nil {
			// Best effort (paper §6): flooding failures are not fatal.
			s.mu.Lock()
			s.stats.ForwardingFailures++
			s.mu.Unlock()
			s.log.WarnCtx(tctx, "dissemination failed",
				logging.String("event", ev.ID), logging.String("error", err.Error()))
		} else {
			s.mu.Lock()
			s.stats.BroadcastsSent++
			s.mu.Unlock()
		}
	}
	return filterTime, nil
}

// filterLocally matches ev against local user profiles and enqueues one
// notification per match on the asynchronous delivery pipeline, returning
// the filtering duration. The match path never calls a client sink directly:
// delivery latency, slow clients and offline users are the pipeline's
// problem, not the matcher's. Matches of composite step profiles are not
// delivered — they drive the composite engine's state machines, whose
// completions re-enter the pipeline as synthesized notifications.
//
// With a QoS controller installed this is the admission point
// (docs/QOS.md): realtime matches bypass quotas, normal matches over the
// subscriber or collection quota are deferred to the mailbox (delayed, not
// lost), and bulk matches over quota are coalesced into a periodic digest
// through the composite engine. Composite step matches are not admission-
// checked — the state machines already dampen their volume, and their
// synthesized firings inherit the composite profile's class.
//
// When tctx carries a sampled trace (a local publish root or the context of
// an incoming GDS hop), the match pass is recorded as one StageMatch span
// and every admission decision as a StageQoS span whose "outcome" attribute
// is the qos.Outcome vocabulary; the qos span's context rides on the
// notification, so mailbox dwell of deferred traffic shows up as qos time
// in the attribution table (docs/TRACING.md).
func (s *Service) filterLocally(ev *event.Event, tctx trace.Context) time.Duration {
	start := time.Now()
	matches := s.matcher.Match(ev)
	elapsed := time.Since(start)

	s.mu.Lock()
	s.stats.FilterTime += elapsed
	now := s.clock()
	ctrl := s.qos
	s.mu.Unlock()

	mctx := s.tracer.Record(tctx, trace.StageMatch, start, elapsed, "",
		trace.Attr{Key: "matches", Value: strconv.Itoa(len(matches))})
	sampled := mctx.Sampled()

	var enqueued, refused, admitted, deferred, coalesced int64
	// The collection bucket is consumed at most once per event, and only
	// when the event actually fans out to quota-subject subscriptions.
	collChecked, collOK := false, true
	for _, m := range matches {
		if m.Profile.CompositeOf != "" {
			// Matches are sorted by profile ID, so for one composite the
			// steps arrive in step order ("p#0" before "p#1") and an event
			// matching several steps advances the earliest ones first. The
			// ingest span is recorded at consumption time so the engine's
			// dwell (window waits, digest accumulation) is attributed to the
			// composite stage, not to matching.
			ictx := trace.Context{}
			if sampled {
				ictx = s.tracer.Record(mctx, trace.StageComposite, time.Now(), 0,
					m.Profile.Class.String(), trace.Attr{Key: "op", Value: "ingest"})
			}
			s.composite.OnPrimitiveCtx(m.Profile.CompositeOf, m.Profile.CompositeStep, ev, m.DocIDs, now, ictx)
			continue
		}
		n := Notification{
			Client:    m.Profile.Owner,
			ProfileID: m.Profile.ID,
			Event:     ev,
			DocIDs:    m.DocIDs,
			Class:     m.Profile.Class,
			At:        now,
		}
		// Admission decision first, span second: the span's outcome
		// attribute records what actually happened to the match.
		outcome := qos.OutcomeAdmit
		if ctrl != nil && m.Profile.Class == qos.ClassRealtime {
			outcome = qos.OutcomeBypass
		}
		if ctrl != nil && m.Profile.Class != qos.ClassRealtime {
			if !collChecked {
				collOK = ctrl.AllowCollection(ev.Collection.String())
				collChecked = true
			}
			// A dry collection bucket short-circuits: the subscriber's own
			// tokens are preserved for less noisy collections.
			if !collOK || !ctrl.AllowSubscriber(m.Profile.Owner) {
				if m.Profile.Class == qos.ClassBulk {
					outcome = qos.OutcomeCoalesce
				} else {
					outcome = qos.OutcomeDefer
				}
			}
		}
		var qctx trace.Context
		if sampled {
			qctx = s.tracer.Record(mctx, trace.StageQoS, time.Now(), 0,
				m.Profile.Class.String(), trace.Attr{Key: "outcome", Value: outcome.String()})
			n.Trace = qctx
		}
		switch outcome {
		case qos.OutcomeCoalesce:
			s.coalesceBulk(m.Profile.ID, m.Profile.Owner, ev, m.DocIDs, now, ctrl, qctx)
			coalesced++
			s.log.DebugCtx(qctx, "match coalesced",
				logging.String("profile", m.Profile.ID), logging.String("client", m.Profile.Owner))
			continue
		case qos.OutcomeDefer:
			if err := s.delivery.Defer(n); err != nil {
				refused++
			} else {
				deferred++
				s.log.DebugCtx(qctx, "match deferred",
					logging.String("profile", m.Profile.ID), logging.String("client", m.Profile.Owner))
			}
			continue
		}
		if err := s.delivery.Enqueue(n); err != nil {
			refused++
			continue
		}
		if ctrl != nil {
			admitted++
		}
		enqueued++
	}
	if enqueued != 0 || refused != 0 || admitted != 0 || deferred != 0 || coalesced != 0 {
		s.mu.Lock()
		s.stats.Notifications += enqueued
		s.stats.NotifyFailures += refused
		s.stats.QoSAdmitted += admitted
		s.stats.QoSDeferred += deferred
		s.stats.QoSCoalesced += coalesced
		s.mu.Unlock()
	}
	return elapsed
}

// forwardPerAuxProfiles sends ev to the hosts of super-collections whose
// auxiliary profiles match (paper §4.2). Unreachable hosts leave the
// forward in the retry queue (paper §7 delayed-not-lost semantics).
func (s *Service) forwardPerAuxProfiles(ctx context.Context, ev *event.Event) {
	auxMatches := s.aux.Match(ev)
	for _, m := range auxMatches {
		super := m.Profile.Super
		// Cycle guard at the sender: if the event already carried this
		// super-collection's identity, forwarding would loop.
		skip := false
		for _, q := range ev.Chain {
			if q == super {
				skip = true
				break
			}
		}
		if skip {
			s.mu.Lock()
			s.stats.CycleRefusals++
			s.mu.Unlock()
			continue
		}
		raw, err := ev.MarshalXMLBytes()
		if err != nil {
			continue
		}
		env, err := protocol.NewEnvelope(s.name, protocol.MsgEvent, &protocol.EventPayload{
			TransformTo: super.String(),
			Event:       protocol.Wrap(raw),
		})
		if err != nil {
			continue
		}
		env.Header.To = super.Host
		s.mu.Lock()
		s.stats.AuxForwards++
		s.mu.Unlock()
		s.sendOrQueue(ctx, "fwd:"+ev.ID+":"+super.String(), super.Host, env)
	}
}

// broadcastEvent floods ev through the GDS.
func (s *Service) broadcastEvent(ctx context.Context, ev *event.Event, tctx trace.Context) error {
	raw, err := ev.MarshalXMLBytes()
	if err != nil {
		return err
	}
	inner, err := protocol.NewEnvelope(s.name, protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap(raw)})
	if err != nil {
		return err
	}
	stampTrace(inner, tctx)
	return s.gdsCli.Broadcast(ctx, inner)
}

// stampTrace attaches a sampled trace context to an outgoing envelope.
// Unsampled contexts stay off the wire: absent means unsampled, so pre-trace
// receivers and untraced runs see byte-identical envelopes.
func stampTrace(env *protocol.Envelope, tctx trace.Context) {
	if tctx.Sampled() {
		env.Header.Trace = tctx.String()
	}
}

// HandleEventEnvelope processes an incoming MsgEvent, whether delivered by
// GDS flooding or forwarded point-to-point over the GS network.
func (s *Service) HandleEventEnvelope(ctx context.Context, env *protocol.Envelope) error {
	var payload protocol.EventPayload
	if err := protocol.Decode(env, protocol.MsgEvent, &payload); err != nil {
		return err
	}
	ev, err := event.UnmarshalXMLBytes(payload.Event.Bytes())
	if err != nil {
		return err
	}
	if payload.TransformTo != "" {
		return s.handleForwardedEvent(ctx, ev, payload.TransformTo)
	}
	return s.handleFloodedEvent(ev, env)
}

// handleFloodedEvent processes an event received via GDS dissemination
// (broadcast, multicast or content routing): filter against local user
// profiles and notify. Flooded events are NOT re-matched against auxiliary
// profiles: the sub-collection's own server already forwarded the event
// over the GS network; re-forwarding from every flooded copy would
// duplicate transforms.
func (s *Service) handleFloodedEvent(ev *event.Event, env *protocol.Envelope) error {
	if s.dedup.Observe(ev.ID) {
		s.mu.Lock()
		s.stats.DuplicatesDropped++
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	s.stats.EventsReceived++
	// Transit cost of the dissemination path, for the routing experiments:
	// virtual per-link latency on the memory transport, wall-clock
	// since-send otherwise.
	if env.Header.VirtualLatencyMicros > 0 {
		s.stats.ReceiveLatency += time.Duration(env.Header.VirtualLatencyMicros) * time.Microsecond
	} else if env.Header.SentAtUnixNano > 0 {
		s.stats.ReceiveLatency += s.clock().Sub(time.Unix(0, env.Header.SentAtUnixNano))
	}
	s.stats.ReceiveHops += int64(env.Header.Hops)
	s.mu.Unlock()
	// Continue the publisher's trace: the envelope carries the context of
	// the last recorded hop span (or the publish root on one-hop paths), so
	// this server's match/qos spans chain under the dissemination path.
	tctx, _ := trace.Parse(env.Header.Trace)
	s.filterLocally(ev, tctx)
	// After filtering, as in publishEvent: the crash window between the
	// notification appends and the dedup record duplicates, never loses.
	s.replicateDedup(ev.ID)
	return nil
}

// handleForwardedEvent processes an event forwarded over the GS network by
// a sub-collection's server: rename it to the named super-collection and
// publish the transformed event as our own (paper §4.2: "the originating
// collection is transformed from London.E to Hamilton.D").
func (s *Service) handleForwardedEvent(ctx context.Context, ev *event.Event, transformTo string) error {
	super, err := event.ParseQName(transformTo)
	if err != nil {
		return fmt.Errorf("core: bad transform target: %w", err)
	}
	if super.Host != s.name {
		return fmt.Errorf("core: transform target %s is not hosted by %s", transformTo, s.name)
	}
	if s.store != nil {
		if _, err := s.store.Get(super.Collection); err != nil {
			return fmt.Errorf("core: transform target %s: %w", transformTo, err)
		}
	}
	transformed, err := ev.Transformed(super)
	if err != nil {
		s.mu.Lock()
		s.stats.CycleRefusals++
		s.mu.Unlock()
		var ce *event.CycleError
		if ok := asCycleError(err, &ce); ok {
			// Refusing the transform is the designed behaviour, not a
			// failure: the event already visited this collection.
			return nil
		}
		return err
	}
	s.mu.Lock()
	s.stats.Transforms++
	s.mu.Unlock()
	_, err = s.publishEvent(ctx, transformed)
	return err
}

func asCycleError(err error, target **event.CycleError) bool {
	for err != nil {
		if ce, ok := err.(*event.CycleError); ok {
			*target = ce
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// sendOrQueue attempts an immediate unicast to a named server, falling back
// to the retry queue when resolution or delivery fails.
func (s *Service) sendOrQueue(ctx context.Context, itemID, destServer string, env *protocol.Envelope) {
	if err := s.sendToServer(ctx, destServer, env); err != nil {
		s.mu.Lock()
		s.stats.ForwardingFailures++
		s.mu.Unlock()
		s.retry.Add(itemID, destServer, &queuedForward{destServer: destServer, env: env})
	}
}

// sendToServer resolves a server name and delivers env.
func (s *Service) sendToServer(ctx context.Context, destServer string, env *protocol.Envelope) error {
	if s.resolver == nil {
		return fmt.Errorf("core: no resolver configured on %s", s.name)
	}
	addr, err := s.resolver.Resolve(ctx, destServer)
	if err != nil {
		return err
	}
	if err := transport.SendOneWay(ctx, s.tr, addr, env); err != nil {
		if s.gdsCli != nil {
			s.gdsCli.InvalidateCache(destServer)
		}
		return err
	}
	return nil
}

// sendQueued is the retry queue's sender.
func (s *Service) sendQueued(ctx context.Context, item *queue.Item) error {
	qf, ok := item.Payload.(*queuedForward)
	if !ok {
		return fmt.Errorf("core: unexpected queue payload %T", item.Payload)
	}
	return s.sendToServer(ctx, qf.destServer, qf.env)
}

// ---------------------------------------------------------------------------
// Auxiliary profile management

// SyncAuxProfiles walks the local collection store and forwards an auxiliary
// profile to every remote sub-collection's host (paper §4.2), and cancels
// profiles for references that no longer exist. Call it after collection
// configuration changes. Unreachable hosts leave installs/cancels queued.
func (s *Service) SyncAuxProfiles(ctx context.Context) error {
	if s.store == nil {
		return nil
	}
	// Desired set: one aux profile per (super, remote sub) pair.
	type auxKey struct{ super, sub event.QName }
	desired := make(map[auxKey]bool)
	for _, coll := range s.store.All() {
		cfg := coll.Config()
		super := event.QName{Host: s.name, Collection: cfg.Name}
		for _, ref := range cfg.RemoteSubs() {
			sub := event.QName{Host: ref.Host, Collection: ref.Name}
			desired[auxKey{super: super, sub: sub}] = true
		}
	}

	s.mu.Lock()
	existing := make(map[string]string, len(s.forwardedAux))
	for id, dest := range s.forwardedAux {
		existing[id] = dest
	}
	s.mu.Unlock()

	// Install missing.
	for key := range desired {
		id := auxProfileID(key.super, key.sub)
		if _, ok := existing[id]; ok {
			delete(existing, id) // still desired
			continue
		}
		p := profile.NewAuxiliary(id, key.super, key.sub)
		raw, err := p.MarshalXMLBytes()
		if err != nil {
			return err
		}
		env, err := protocol.NewEnvelope(s.name, protocol.MsgForwardProfile, &protocol.ForwardProfile{Profile: protocol.Wrap(raw)})
		if err != nil {
			return err
		}
		env.Header.To = key.sub.Host
		s.mu.Lock()
		s.forwardedAux[id] = key.sub.Host
		s.stats.AuxInstallsSent++
		s.mu.Unlock()
		s.sendOrQueue(ctx, "aux-install:"+id, key.sub.Host, env)
	}

	// Cancel the leftovers (references removed by restructuring).
	for id, dest := range existing {
		// A queued, never-delivered install is simply dropped.
		if s.retry.Remove("aux-install:" + id) {
			s.mu.Lock()
			delete(s.forwardedAux, id)
			s.mu.Unlock()
			continue
		}
		env, err := protocol.NewEnvelope(s.name, protocol.MsgCancelProfile, &protocol.CancelProfile{ProfileID: id})
		if err != nil {
			return err
		}
		env.Header.To = dest
		s.mu.Lock()
		delete(s.forwardedAux, id)
		s.stats.AuxCancelsSent++
		s.mu.Unlock()
		s.sendOrQueue(ctx, "aux-cancel:"+id, dest, env)
	}
	return nil
}

// auxProfileID derives the deterministic identifier of the auxiliary
// profile watching sub on behalf of super. Determinism makes installs and
// cancels idempotent across restarts and retries (paper §7: "each forwarded
// collection profile is itself unique").
func auxProfileID(super, sub event.QName) string {
	return "aux:" + super.String() + ">" + sub.String()
}

// HandleForwardProfile installs an auxiliary profile pushed by a
// super-collection's server.
func (s *Service) HandleForwardProfile(env *protocol.Envelope) error {
	var fp protocol.ForwardProfile
	if err := protocol.Decode(env, protocol.MsgForwardProfile, &fp); err != nil {
		return err
	}
	p, err := profile.UnmarshalXMLBytes(fp.Profile.Bytes())
	if err != nil {
		return err
	}
	if p.Kind != profile.KindAuxiliary {
		return fmt.Errorf("core: forwarded profile %s is not auxiliary", p.ID)
	}
	if p.Sub.Host != s.name {
		return fmt.Errorf("core: aux profile %s watches %s, not hosted by %s", p.ID, p.Sub, s.name)
	}
	if err := s.aux.Add(p); err != nil {
		return err
	}
	s.replicateProfileAdd(p)
	return nil
}

// HandleCancelProfile removes a previously forwarded auxiliary profile.
// Cancelling an unknown profile is not an error (the install may never have
// arrived — exactly the dangling-profile scenario the design avoids).
func (s *Service) HandleCancelProfile(env *protocol.Envelope) error {
	var cp protocol.CancelProfile
	if err := protocol.Decode(env, protocol.MsgCancelProfile, &cp); err != nil {
		return err
	}
	s.aux.Remove(cp.ProfileID)
	s.replicateProfileRemove("", cp.ProfileID)
	return nil
}

// ForwardedAuxIDs lists the aux profiles this server has pushed out.
func (s *Service) ForwardedAuxIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.forwardedAux))
	for id := range s.forwardedAux {
		out = append(out, id)
	}
	sortStrings(out)
	return out
}
