package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

func TestSaveLoadSubscriptions(t *testing.T) {
	s := newLocalService(t) // Hamilton
	if _, err := s.Subscribe("alice", profile.MustParse(`collection = "Hamilton.D"`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubscribeQuery("bob", event.QName{Host: "Hamilton", Collection: "D"}, "", "whale"); err != nil {
		t.Fatal(err)
	}
	// An installed auxiliary profile.
	aux := profile.NewAuxiliary("aux:X.S>Hamilton.E",
		event.QName{Host: "X", Collection: "S"},
		event.QName{Host: "Hamilton", Collection: "E"})
	rawAux, _ := aux.MarshalXMLBytes()
	env := protocol.MustEnvelope("X", protocol.MsgForwardProfile, &protocol.ForwardProfile{Profile: protocol.Wrap(rawAux)})
	if err := s.HandleForwardProfile(env); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Hamilton.D") {
		t.Error("snapshot missing profile content")
	}

	// A fresh service (restart) restores everything.
	s2 := newLocalService(t)
	n, err := s2.LoadSubscriptions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored = %d, want 3", n)
	}
	if s2.UserProfileCount() != 2 || s2.AuxProfileCount() != 1 {
		t.Fatalf("restored counts: user=%d aux=%d", s2.UserProfileCount(), s2.AuxProfileCount())
	}
	if got := s2.ProfilesOf("alice"); len(got) != 1 {
		t.Errorf("alice profiles = %v", got)
	}
	// Restored profiles actually fire (after the client re-registers its
	// notifier).
	sink := NewMemoryNotifier()
	s2.RegisterNotifier("alice", sink)
	store := collection.NewStore("Hamilton")
	_, _ = store.Add(collection.Config{Name: "D", Public: true})
	buildAndPublish(t, s2, store, "D", []*collection.Document{{ID: "d1"}})
	if sink.Len() != 1 {
		t.Errorf("restored profile did not fire: %d", sink.Len())
	}
}

// TestLoadSubscriptionsReplacesDuplicateIDs covers the merge path: loading
// a snapshot into a service that already holds profiles with the same IDs
// replaces them (both user and auxiliary) instead of duplicating, and the
// replacement expression is the one that fires afterwards.
func TestLoadSubscriptionsReplacesDuplicateIDs(t *testing.T) {
	// Source service: one user profile matching Hamilton.D, one aux profile.
	src := newLocalService(t)
	userP := profile.NewUser("p-dup", "alice", "Hamilton", profile.MustParse(`collection = "Hamilton.D"`))
	if err := src.SubscribeProfile(userP); err != nil {
		t.Fatal(err)
	}
	aux := profile.NewAuxiliary("aux:X.S>Hamilton.E",
		event.QName{Host: "X", Collection: "S"},
		event.QName{Host: "Hamilton", Collection: "E"})
	rawAux, _ := aux.MarshalXMLBytes()
	env := protocol.MustEnvelope("X", protocol.MsgForwardProfile, &protocol.ForwardProfile{Profile: protocol.Wrap(rawAux)})
	if err := src.HandleForwardProfile(env); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.SaveSubscriptions(&snap); err != nil {
		t.Fatal(err)
	}

	// Destination service: the SAME IDs bound to different content.
	dst := newLocalService(t)
	stale := profile.NewUser("p-dup", "alice", "Hamilton", profile.MustParse(`collection = "Hamilton.Other"`))
	if err := dst.SubscribeProfile(stale); err != nil {
		t.Fatal(err)
	}
	staleAux := profile.NewAuxiliary("aux:X.S>Hamilton.E",
		event.QName{Host: "X", Collection: "S"},
		event.QName{Host: "Hamilton", Collection: "Stale"})
	rawStale, _ := staleAux.MarshalXMLBytes()
	envStale := protocol.MustEnvelope("X", protocol.MsgForwardProfile, &protocol.ForwardProfile{Profile: protocol.Wrap(rawStale)})
	if err := dst.HandleForwardProfile(envStale); err != nil {
		t.Fatal(err)
	}

	n, err := dst.LoadSubscriptions(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored = %d, want 2", n)
	}
	// Replaced, not duplicated.
	if dst.UserProfileCount() != 1 || dst.AuxProfileCount() != 1 {
		t.Fatalf("counts after merge: user=%d aux=%d, want 1/1", dst.UserProfileCount(), dst.AuxProfileCount())
	}
	if got := dst.ProfilesOf("alice"); len(got) != 1 || got[0] != "p-dup" {
		t.Errorf("alice profiles = %v", got)
	}
	// The loaded expression wins: Hamilton.D fires, Hamilton.Other does not.
	sink := NewMemoryNotifier()
	dst.RegisterNotifier("alice", sink)
	store := collection.NewStore("Hamilton")
	_, _ = store.Add(collection.Config{Name: "D", Public: true})
	_, _ = store.Add(collection.Config{Name: "Other", Public: true})
	buildAndPublish(t, dst, store, "Other", []*collection.Document{{ID: "o1"}})
	if sink.Len() != 0 {
		t.Errorf("stale expression still fires: %d", sink.Len())
	}
	buildAndPublish(t, dst, store, "D", []*collection.Document{{ID: "d1"}})
	if sink.Len() != 1 {
		t.Errorf("replacement expression notifications = %d, want 1", sink.Len())
	}
}

func TestLoadSubscriptionsRejectsBadInput(t *testing.T) {
	s := newLocalService(t)
	if _, err := s.LoadSubscriptions(strings.NewReader("not xml")); err == nil {
		t.Error("garbage accepted")
	}
	// An aux profile for a different host is refused.
	foreign := profile.NewAuxiliary("aux:X.S>Other.E",
		event.QName{Host: "X", Collection: "S"},
		event.QName{Host: "Other", Collection: "E"})
	raw, _ := foreign.MarshalXMLBytes()
	doc := "<Subscriptions Server=\"Hamilton\"><Profile>" + string(raw) + "</Profile></Subscriptions>"
	if _, err := s.LoadSubscriptions(strings.NewReader(doc)); err == nil {
		t.Error("foreign aux profile accepted")
	}
}

func TestSnapshotRoundTripIsStable(t *testing.T) {
	s := newLocalService(t)
	_, _ = s.Subscribe("alice", profile.MustParse(`collection = "Hamilton.D" AND doc.id in ("a", "b")`))
	var first bytes.Buffer
	if err := s.SaveSubscriptions(&first); err != nil {
		t.Fatal(err)
	}
	s2 := newLocalService(t)
	if _, err := s2.LoadSubscriptions(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := s2.SaveSubscriptions(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("snapshot not stable:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	s := newLocalService(t)
	var buf bytes.Buffer
	if err := s.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := newLocalService(t)
	n, err := s2.LoadSubscriptions(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 0 {
		t.Errorf("empty round trip: n=%d err=%v", n, err)
	}
}

func TestRoutingModeValidation(t *testing.T) {
	tr := transport.NewMemory(1)
	s, err := New(Config{ServerName: "X", Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if s.RoutingMode() != RouteBroadcast {
		t.Errorf("default mode = %v", s.RoutingMode())
	}
	if err := s.SetRoutingMode(ctx, RoutingMode(99)); err == nil {
		t.Error("bad mode accepted")
	}
	if err := s.SetRoutingMode(ctx, RouteMulticast); err != nil {
		t.Fatal(err)
	}
	if s.RoutingMode() != RouteMulticast {
		t.Error("mode not switched")
	}
}
