package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

// peerRecorder registers an address and records envelopes by type.
type peerRecorder struct {
	mu  sync.Mutex
	got []*protocol.Envelope
}

func listenPeer(t *testing.T, tr transport.Transport, addr string) *peerRecorder {
	t.Helper()
	r := &peerRecorder{}
	if _, err := tr.Listen(addr, transport.HandlerFunc(
		func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
			r.mu.Lock()
			r.got = append(r.got, env)
			r.mu.Unlock()
			return nil, nil
		})); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *peerRecorder) byType(typ protocol.MessageType) []*protocol.Envelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*protocol.Envelope
	for _, e := range r.got {
		if e.Header.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// newRoutedService builds a Hamilton service over a fresh memory transport
// with a static resolver and a local store.
func newRoutedService(t *testing.T) (*Service, *transport.Memory, *collection.Store) {
	t.Helper()
	tr := transport.NewMemory(1)
	t.Cleanup(func() { _ = tr.Close() })
	store := collection.NewStore("Hamilton")
	s, err := New(Config{
		ServerName: "Hamilton",
		ServerAddr: "addr:Hamilton",
		Transport:  tr,
		Resolver:   StaticResolver{"London": "addr:London", "Paris": "addr:Paris"},
		Store:      store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, tr, store
}

func TestSyncAuxProfilesInstallAndCancel(t *testing.T) {
	s, tr, store := newRoutedService(t)
	london := listenPeer(t, tr, "addr:London")
	ctx := context.Background()

	// D references London.E -> one install.
	coll, err := store.Add(collection.Config{Name: "D", Public: true,
		Subs: []collection.SubRef{{Host: "London", Name: "E"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SyncAuxProfiles(ctx); err != nil {
		t.Fatal(err)
	}
	installs := london.byType(protocol.MsgForwardProfile)
	if len(installs) != 1 {
		t.Fatalf("installs = %d", len(installs))
	}
	var fp protocol.ForwardProfile
	if err := protocol.Decode(installs[0], protocol.MsgForwardProfile, &fp); err != nil {
		t.Fatal(err)
	}
	p, err := profile.UnmarshalXMLBytes(fp.Profile.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != profile.KindAuxiliary || p.Super.String() != "Hamilton.D" || p.Sub.String() != "London.E" {
		t.Errorf("aux profile = %+v", p)
	}
	if got := s.ForwardedAuxIDs(); len(got) != 1 {
		t.Errorf("forwarded ids = %v", got)
	}

	// Idempotent: re-sync sends nothing new.
	if err := s.SyncAuxProfiles(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(london.byType(protocol.MsgForwardProfile)); got != 1 {
		t.Errorf("re-sync sent %d installs", got)
	}

	// Dropping the reference sends a cancel.
	if err := coll.SetConfig(collection.Config{Name: "D", Public: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncAuxProfiles(ctx); err != nil {
		t.Fatal(err)
	}
	cancels := london.byType(protocol.MsgCancelProfile)
	if len(cancels) != 1 {
		t.Fatalf("cancels = %d", len(cancels))
	}
	if got := s.ForwardedAuxIDs(); len(got) != 0 {
		t.Errorf("forwarded ids after cancel = %v", got)
	}
}

func TestSyncAuxProfilesQueuedInstallSupersededByRemoval(t *testing.T) {
	s, _, store := newRoutedService(t)
	ctx := context.Background()
	// London is NOT listening: install fails and is queued.
	coll, _ := store.Add(collection.Config{Name: "D", Public: true,
		Subs: []collection.SubRef{{Host: "London", Name: "E"}}})
	if err := s.SyncAuxProfiles(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Retry().Len() != 1 {
		t.Fatalf("queued = %d", s.Retry().Len())
	}
	// The reference is removed before the install was ever delivered: the
	// queued install is dropped, no cancel needs to travel.
	_ = coll.SetConfig(collection.Config{Name: "D", Public: true})
	if err := s.SyncAuxProfiles(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Retry().Len() != 0 {
		t.Fatalf("queue after supersede = %d", s.Retry().Len())
	}
	if got := s.ForwardedAuxIDs(); len(got) != 0 {
		t.Errorf("forwarded ids = %v", got)
	}
}

func TestForwardedEventValidation(t *testing.T) {
	s, _, store := newRoutedService(t)
	_, _ = store.Add(collection.Config{Name: "D", Public: true})
	ctx := context.Background()

	mkEnv := func(transformTo string, ev *event.Event) *protocol.Envelope {
		raw, err := ev.MarshalXMLBytes()
		if err != nil {
			t.Fatal(err)
		}
		return protocol.MustEnvelope("London", protocol.MsgEvent, &protocol.EventPayload{
			TransformTo: transformTo,
			Event:       protocol.Wrap(raw),
		})
	}
	ev := event.New("e1", event.TypeCollectionRebuilt, event.QName{Host: "London", Collection: "E"}, 1, nil, time.Now())

	// Wrong host in transform target.
	if err := s.HandleEventEnvelope(ctx, mkEnv("Paris.X", ev)); err == nil {
		t.Error("foreign transform target accepted")
	}
	// Unknown local collection.
	if err := s.HandleEventEnvelope(ctx, mkEnv("Hamilton.Nope", ev)); err == nil {
		t.Error("unknown collection transform accepted")
	}
	// Malformed target.
	if err := s.HandleEventEnvelope(ctx, mkEnv("nodot", ev)); err == nil {
		t.Error("malformed transform target accepted")
	}
	// Valid transform works and notifies local subscribers.
	sink := NewMemoryNotifier()
	s.RegisterNotifier("w", sink)
	if _, err := s.Subscribe("w", profile.MustParse(`collection = "Hamilton.D"`)); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleEventEnvelope(ctx, mkEnv("Hamilton.D", ev)); err != nil {
		t.Fatal(err)
	}
	drainService(t, s)
	if sink.Len() != 1 {
		t.Fatalf("notifications = %d", sink.Len())
	}
	if got := s.Stats().Transforms; got != 1 {
		t.Errorf("transforms = %d", got)
	}

	// A cyclic transform (event already carries Hamilton.D) is refused
	// silently — designed behaviour, not an error.
	cyc, err := ev.Transformed(event.QName{Host: "Hamilton", Collection: "D"})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().CycleRefusals
	if err := s.HandleEventEnvelope(ctx, mkEnv("Hamilton.D", cyc)); err != nil {
		t.Fatalf("cycle refusal surfaced as error: %v", err)
	}
	if s.Stats().CycleRefusals != before+1 {
		t.Error("cycle refusal not counted")
	}
}

func TestAuxForwardCycleGuardAtSender(t *testing.T) {
	s, tr, _ := newRoutedService(t)
	london := listenPeer(t, tr, "addr:London")
	// Install an aux profile at Hamilton watching Hamilton.X on behalf of
	// London.S (so Hamilton is the sub-collection's server here).
	aux := profile.NewAuxiliary("aux:London.S>Hamilton.X",
		event.QName{Host: "London", Collection: "S"},
		event.QName{Host: "Hamilton", Collection: "X"})
	raw, _ := aux.MarshalXMLBytes()
	env := protocol.MustEnvelope("London", protocol.MsgForwardProfile,
		&protocol.ForwardProfile{Profile: protocol.Wrap(raw)})
	if err := s.HandleForwardProfile(env); err != nil {
		t.Fatal(err)
	}

	// An event about Hamilton.X whose chain ALREADY contains London.S must
	// not be forwarded (sender-side cycle guard).
	ev := event.New("e1", event.TypeCollectionRebuilt, event.QName{Host: "London", Collection: "S"}, 1, nil, time.Now())
	looped, err := ev.Transformed(event.QName{Host: "Hamilton", Collection: "X"})
	if err != nil {
		t.Fatal(err)
	}
	s.forwardPerAuxProfiles(context.Background(), looped)
	if got := len(london.byType(protocol.MsgEvent)); got != 0 {
		t.Errorf("cyclic event forwarded %d times", got)
	}
	if s.Stats().CycleRefusals == 0 {
		t.Error("sender-side refusal not counted")
	}

	// A clean event IS forwarded with the transform target set.
	clean := event.New("e2", event.TypeCollectionRebuilt, event.QName{Host: "Hamilton", Collection: "X"}, 1, nil, time.Now())
	s.forwardPerAuxProfiles(context.Background(), clean)
	fwd := london.byType(protocol.MsgEvent)
	if len(fwd) != 1 {
		t.Fatalf("forwards = %d", len(fwd))
	}
	var payload protocol.EventPayload
	if err := protocol.Decode(fwd[0], protocol.MsgEvent, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.TransformTo != "London.S" {
		t.Errorf("transform target = %q", payload.TransformTo)
	}
}

func TestSendOrQueueFallsBackToRetry(t *testing.T) {
	s, tr, _ := newRoutedService(t)
	env := protocol.MustEnvelope("Hamilton", protocol.MsgPing, &protocol.Ping{})
	// Paris resolves but is not listening.
	s.sendOrQueue(context.Background(), "item1", "Paris", env)
	if s.Retry().Len() != 1 {
		t.Fatalf("queue = %d", s.Retry().Len())
	}
	if s.Stats().ForwardingFailures != 1 {
		t.Errorf("failures = %d", s.Stats().ForwardingFailures)
	}
	// Paris comes up; flush delivers.
	paris := listenPeer(t, tr, "addr:Paris")
	if n := s.Retry().Flush(context.Background(), true); n != 1 {
		t.Fatalf("flush = %d", n)
	}
	if len(paris.byType(protocol.MsgPing)) != 1 {
		t.Error("queued envelope never arrived")
	}
	// Unresolvable destination queues too.
	s.sendOrQueue(context.Background(), "item2", "Atlantis", env)
	if s.Retry().Len() != 1 {
		t.Errorf("unresolvable not queued")
	}
}

func TestSendToServerWithoutResolver(t *testing.T) {
	tr := transport.NewMemory(1)
	s, err := New(Config{ServerName: "X", Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	env := protocol.MustEnvelope("X", protocol.MsgPing, &protocol.Ping{})
	if err := s.sendToServer(context.Background(), "Y", env); err == nil {
		t.Error("send without resolver succeeded")
	}
}

func TestRemoteNotifierDelivers(t *testing.T) {
	tr := transport.NewMemory(1)
	client := listenPeer(t, tr, "addr:client")
	n := NewRemoteNotifier("Hamilton", "addr:client", tr)
	ev := event.New("e1", event.TypeDocumentsAdded, event.QName{Host: "H", Collection: "C"}, 1,
		[]event.DocRef{{ID: "d1"}}, time.Now())
	n.Notify(Notification{Client: "carol", ProfileID: "p1", Event: ev})
	got := client.byType(protocol.MsgNotify)
	if len(got) != 1 {
		t.Fatalf("notify deliveries = %d", len(got))
	}
	var payload protocol.Notify
	if err := protocol.Decode(got[0], protocol.MsgNotify, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Client != "carol" || payload.ProfileID != "p1" {
		t.Errorf("payload = %+v", payload)
	}
	back, err := event.UnmarshalXMLBytes(payload.Event.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "e1" || len(back.Docs) != 1 {
		t.Errorf("event round trip = %+v", back)
	}
}

func TestPublishBuildReportsFilterTime(t *testing.T) {
	s, _, store := newRoutedService(t)
	_, _ = store.Add(collection.Config{Name: "D", Public: true})
	sink := NewMemoryNotifier()
	s.RegisterNotifier("u", sink)
	for i := 0; i < 50; i++ {
		if _, err := s.Subscribe("u", profile.MustParse(fmt.Sprintf(`dc.Creator = "A%d"`, i))); err != nil {
			t.Fatal(err)
		}
	}
	coll, _ := store.Get("D")
	docs := make([]*collection.Document, 20)
	for i := range docs {
		docs[i] = &collection.Document{ID: fmt.Sprintf("d%d", i),
			Metadata: map[string][]string{"dc.Creator": {fmt.Sprintf("A%d", i)}}}
	}
	res, err := coll.Build(docs, time.Now(), func() string { return protocol.NewID("H") })
	if err != nil {
		t.Fatal(err)
	}
	ft, err := s.PublishBuild(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	drainService(t, s)
	if ft <= 0 {
		t.Error("filter time not measured")
	}
	if st := s.Stats(); st.FilterTime < ft {
		t.Errorf("cumulative filter time %v < reported %v", st.FilterTime, ft)
	}
	if sink.Len() != 20 {
		t.Errorf("notifications = %d, want 20", sink.Len())
	}
}

func TestHandleEventEnvelopeMalformed(t *testing.T) {
	s, _, _ := newRoutedService(t)
	ctx := context.Background()
	// Wrong type.
	bad := protocol.MustEnvelope("X", protocol.MsgPing, &protocol.Ping{})
	if err := s.HandleEventEnvelope(ctx, bad); !errors.Is(err, protocol.ErrTypeMismatch) {
		t.Errorf("err = %v", err)
	}
	// Undecodable event body.
	env := protocol.MustEnvelope("X", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<junk/>"))})
	if err := s.HandleEventEnvelope(ctx, env); err == nil {
		t.Error("junk event accepted")
	}
}
