package core

import (
	"context"
	"sync"

	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/transport"
)

// wireClass renders a notification class for the wire, empty for the
// default so pre-QoS receivers see unchanged envelopes.
func wireClass(c qos.Class) string {
	if c == qos.ClassNormal {
		return ""
	}
	return c.String()
}

// MemoryNotifier records notifications in memory; tests, simulations and
// in-process clients use it.
type MemoryNotifier struct {
	mu   sync.Mutex
	got  []Notification
	subs []chan Notification
}

var _ Notifier = (*MemoryNotifier)(nil)

// NewMemoryNotifier builds an empty recorder.
func NewMemoryNotifier() *MemoryNotifier { return &MemoryNotifier{} }

// Notify implements Notifier.
func (m *MemoryNotifier) Notify(n Notification) {
	m.mu.Lock()
	m.got = append(m.got, n)
	subs := append([]chan Notification(nil), m.subs...)
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- n:
		default: // slow consumer: drop rather than block the service
		}
	}
}

// NotifyBatch implements BatchNotifier: one append per flush.
func (m *MemoryNotifier) NotifyBatch(ns []Notification) error {
	m.mu.Lock()
	m.got = append(m.got, ns...)
	subs := append([]chan Notification(nil), m.subs...)
	m.mu.Unlock()
	for _, ch := range subs {
		for _, n := range ns {
			select {
			case ch <- n:
			default:
			}
		}
	}
	return nil
}

// All returns a copy of every recorded notification.
func (m *MemoryNotifier) All() []Notification {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Notification(nil), m.got...)
}

// Len reports how many notifications were received.
func (m *MemoryNotifier) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.got)
}

// Reset clears recorded notifications.
func (m *MemoryNotifier) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.got = nil
}

// Watch returns a channel receiving future notifications (buffered; slow
// consumers miss rather than block).
func (m *MemoryNotifier) Watch() <-chan Notification {
	ch := make(chan Notification, 64)
	m.mu.Lock()
	m.subs = append(m.subs, ch)
	m.mu.Unlock()
	return ch
}

// RemoteNotifier delivers notifications to a client over the transport as
// MsgNotify envelopes (clients connected through a receptionist on another
// machine).
type RemoteNotifier struct {
	from       string
	clientAddr string
	tr         transport.Transport
}

var _ Notifier = (*RemoteNotifier)(nil)

// NewRemoteNotifier builds a notifier pushing to clientAddr.
func NewRemoteNotifier(from, clientAddr string, tr transport.Transport) *RemoteNotifier {
	return &RemoteNotifier{from: from, clientAddr: clientAddr, tr: tr}
}

// Notify implements Notifier; delivery is best effort. Composite
// notifications travel as MsgNotifyComposite so the contributing primitive
// events arrive alongside the synthesized summary.
func (r *RemoteNotifier) Notify(n Notification) {
	env, err := r.envelopeFor(n)
	if err != nil {
		return
	}
	_ = transport.SendOneWay(context.Background(), r.tr, r.clientAddr, env) // best effort
}

// envelopeFor builds the wire form of one notification: MsgNotify for
// primitive alerts, MsgNotifyComposite for synthesized composite alerts.
func (r *RemoteNotifier) envelopeFor(n Notification) (*protocol.Envelope, error) {
	raw, err := n.Event.MarshalXMLBytes()
	if err != nil {
		return nil, err
	}
	if n.Composite == "" {
		return protocol.NewEnvelope(r.from, protocol.MsgNotify, &protocol.Notify{
			Client:    n.Client,
			ProfileID: n.ProfileID,
			Class:     wireClass(n.Class),
			Event:     protocol.Wrap(raw),
		})
	}
	payload := protocol.CompositeNotify{
		Client:    n.Client,
		ProfileID: n.ProfileID,
		Kind:      n.Composite,
		DocIDs:    n.DocIDs,
		Class:     wireClass(n.Class),
		Event:     protocol.Wrap(raw),
	}
	for _, ev := range n.Contributing {
		evRaw, err := ev.MarshalXMLBytes()
		if err != nil {
			return nil, err
		}
		payload.Contributing = append(payload.Contributing, protocol.Wrap(evRaw))
	}
	return protocol.NewEnvelope(r.from, protocol.MsgNotifyComposite, &payload)
}

// NotifyBatch implements BatchNotifier: the whole batch — primitive and
// composite notifications alike — travels as one MsgNotifyBatch envelope
// (one transport round-trip per flush, and atomic: a failure redelivers
// the batch wholesale rather than duplicating a delivered prefix).
// Composite items carry their operator kind and contributing events
// inline. Unlike Notify it reports failure, so the delivery pipeline
// parks the batch in the client's mailbox and redelivers after the client
// reconnects — the paper §7 delayed-not-lost semantics applied to
// notifications.
func (r *RemoteNotifier) NotifyBatch(ns []Notification) error {
	payload := protocol.NotifyBatch{}
	for _, n := range ns {
		raw, err := n.Event.MarshalXMLBytes()
		if err != nil {
			return err
		}
		item := protocol.Notify{
			Client:    n.Client,
			ProfileID: n.ProfileID,
			Composite: n.Composite,
			Class:     wireClass(n.Class),
			Event:     protocol.Wrap(raw),
		}
		for _, ev := range n.Contributing {
			evRaw, err := ev.MarshalXMLBytes()
			if err != nil {
				return err
			}
			item.Contributing = append(item.Contributing, protocol.Wrap(evRaw))
		}
		payload.Items = append(payload.Items, item)
	}
	env, err := protocol.NewEnvelope(r.from, protocol.MsgNotifyBatch, &payload)
	if err != nil {
		return err
	}
	return transport.SendOneWay(context.Background(), r.tr, r.clientAddr, env)
}
