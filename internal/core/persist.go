package core

import (
	"encoding/xml"
	"fmt"
	"io"

	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
)

// Subscription state survives server restarts: user profiles must not be
// silently dropped (that would be a permanent false negative for the user)
// and installed auxiliary profiles must keep watching their sub-collections.
// The snapshot format is a plain XML list of the same profile fragments the
// wire protocol uses.

// snapshot is the persisted form.
type snapshot struct {
	XMLName  xml.Name          `xml:"Subscriptions"`
	Server   string            `xml:"Server,attr"`
	Profiles []protocol.RawXML `xml:"Profile"`
}

// SaveSubscriptions writes every user, composite and auxiliary profile to
// w. Composite profiles are persisted as their temporal wrapper text (the
// wire form); the step profiles the matcher holds for them are derived
// state and skipped — restoring the parent re-derives them.
func (s *Service) SaveSubscriptions(w io.Writer) error {
	snap := snapshot{Server: s.name}
	s.mu.Lock()
	composites := make([]*profile.Profile, 0, len(s.compositeProfiles))
	for _, p := range s.compositeProfiles {
		composites = append(composites, p)
	}
	s.mu.Unlock()
	sortProfilesByID(composites)
	add := func(p *profile.Profile) error {
		raw, err := p.MarshalXMLBytes()
		if err != nil {
			return fmt.Errorf("core: snapshot %s: %w", p.ID, err)
		}
		snap.Profiles = append(snap.Profiles, protocol.Wrap(raw))
		return nil
	}
	for _, p := range composites {
		if err := add(p); err != nil {
			return err
		}
	}
	for _, set := range []interface{ All() []*profile.Profile }{s.matcher, s.aux} {
		for _, p := range set.All() {
			if p.CompositeOf != "" {
				continue
			}
			if err := add(p); err != nil {
				return err
			}
		}
	}
	out, err := xml.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("core: snapshot write: %w", err)
	}
	return nil
}

// LoadSubscriptions restores a snapshot written by SaveSubscriptions,
// merging into the current state (existing profile IDs are replaced).
// Notifier registrations are not part of the snapshot: clients re-register
// their delivery sinks on reconnect. It returns the number of profiles
// restored.
func (s *Service) LoadSubscriptions(r io.Reader) (int, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return 0, fmt.Errorf("core: snapshot read: %w", err)
	}
	var snap snapshot
	if err := xml.Unmarshal(raw, &snap); err != nil {
		return 0, fmt.Errorf("core: snapshot parse: %w", err)
	}
	restored := 0
	for i, frag := range snap.Profiles {
		p, err := profile.UnmarshalXMLBytes(frag.Bytes())
		if err != nil {
			return restored, fmt.Errorf("core: snapshot profile %d: %w", i, err)
		}
		switch p.Kind {
		case profile.KindUser:
			if err := s.addUserProfile(p); err != nil {
				return restored, err
			}
		case profile.KindAuxiliary:
			if p.Sub.Host != s.name {
				return restored, fmt.Errorf("core: snapshot aux profile %s watches %s, not %s", p.ID, p.Sub, s.name)
			}
			if err := s.aux.Add(p); err != nil {
				return restored, err
			}
		default:
			return restored, fmt.Errorf("core: snapshot profile %s has unknown kind", p.ID)
		}
		restored++
	}
	return restored, nil
}

func sortProfilesByID(ps []*profile.Profile) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].ID < ps[j-1].ID; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
