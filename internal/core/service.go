// Package core implements the paper's primary contribution: the per-server
// alerting service with hybrid routing (paper §4.2).
//
// Every Greenstone server runs one Service. User profiles are stored only at
// the server where the user defined them (the "unified single access point"
// with no orphan profiles, paper §1 problems 3–4). When a collection is
// (re)built the service:
//
//  1. filters the build's events against local user profiles and notifies
//     local clients;
//  2. matches local auxiliary profiles and forwards matching events over
//     the Greenstone network to the hosts of the referencing
//     super-collections, which rename ("transform") the event and publish
//     it as their own;
//  3. floods the events to every other Greenstone server via the GDS
//     broadcast, where step 1 repeats against that server's profiles.
//
// Auxiliary profile installation and event forwarding over the GS network go
// through a retry queue so partitions delay rather than lose them (§7).
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/composite"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/filter"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/queue"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

// Resolver maps Greenstone server names to transport addresses. The GDS
// naming service implements it; tests may use a static table.
type Resolver interface {
	Resolve(ctx context.Context, name string) (string, error)
}

// StaticResolver is a fixed name table.
type StaticResolver map[string]string

// Resolve implements Resolver.
func (s StaticResolver) Resolve(_ context.Context, name string) (string, error) {
	addr, ok := s[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", gds.ErrNameNotFound, name)
	}
	return addr, nil
}

// Notification is what a client receives when one of its profiles matches.
// It is an alias of delivery.Notification: the match path hands matches to
// the asynchronous delivery pipeline without conversion.
type Notification = delivery.Notification

// Notifier delivers notifications to one client.
type Notifier interface {
	Notify(n Notification)
}

// BatchNotifier is an optional Notifier refinement: sinks that can deliver a
// whole batch in one transport round-trip (the pipeline's per-destination
// batching amortisation). A non-nil error parks the batch in the client's
// mailbox for redelivery on reconnect.
type BatchNotifier interface {
	Notifier
	NotifyBatch(ns []Notification) error
}

// NotifierFunc adapts a function to Notifier.
type NotifierFunc func(n Notification)

// Notify implements Notifier.
func (f NotifierFunc) Notify(n Notification) { f(n) }

// Config assembles a Service.
type Config struct {
	// ServerName is the Greenstone server's network-internal name.
	ServerName string
	// ServerAddr is the server's transport address (aux forwards arrive
	// there).
	ServerAddr string
	// Transport carries GS-network unicasts (aux profiles, forwarded
	// events).
	Transport transport.Transport
	// GDS is the directory client for broadcasting; nil disables flooding
	// (solitary installation).
	GDS *gds.Client
	// Resolver maps server names to addresses; defaults to GDS when nil.
	Resolver Resolver
	// Store provides the local collections (for auxiliary profile
	// synchronisation); may be nil for servers without collections.
	Store *collection.Store
	// Matcher is the filtering engine; defaults to equality-preferred.
	Matcher filter.Matcher
	// Delivery is the asynchronous notification pipeline. When nil the
	// service builds its own pipeline — from DeliveryConfig when set,
	// defaults otherwise — and closes it with the service; pass a
	// pre-built pipeline to share or manage it externally.
	Delivery *delivery.Pipeline
	// DeliveryConfig configures the service-owned pipeline built when
	// Delivery is nil; ignored otherwise.
	DeliveryConfig *delivery.Config
	// ContentWarmup is how long the service keeps flooding after switching
	// to RouteContent, while digest advertisements populate the directory's
	// routing tables. Negative disables the warm-up (deterministic
	// simulations); zero selects DefaultContentWarmup.
	ContentWarmup time.Duration
	// DedupCapacity bounds the window of remembered event IDs (the
	// duplicate-suppression ring of paper §1 problem 2). Larger windows
	// cost memory (~100 B per remembered ID) but survive longer broadcast
	// echo delays; smaller windows risk re-delivering an event whose
	// duplicate arrives after the original was evicted. Zero selects
	// event.DefaultDedupCapacity.
	DedupCapacity int
	// CompositeMaxInstances caps open sequence instances per composite
	// profile (internal/composite); zero selects the engine default.
	CompositeMaxInstances int
	// QoS enables admission control at the publish path (docs/QOS.md):
	// per-subscriber and per-collection token-bucket quotas, with
	// over-quota normal traffic deferred and over-quota bulk traffic
	// coalesced into digests. Nil disables admission (every match is
	// enqueued, as before), though priority classes still select delivery
	// scheduling weights.
	QoS *qos.Controller
	// Tracer records pipeline spans (docs/TRACING.md): a publish root per
	// originated event, match/qos/composite spans on the filter path, and
	// the context threaded into disseminated envelopes so downstream hops
	// chain onto the same trace. Nil disables tracing (the default); the
	// service also hands the tracer to a pipeline it builds itself.
	Tracer *trace.Tracer
	// Log is the service's component logger (docs/LOGGING.md): admission
	// outcomes at debug, dissemination failures at warn, routing-mode and
	// health-alert events at info, all carrying the active trace ID. Nil
	// disables logging at one pointer check per site; the service also
	// hands it to a pipeline it builds itself.
	Log *logging.Logger
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

// Service is the alerting service of one Greenstone server.
type Service struct {
	name     string
	addr     string
	tr       transport.Transport
	gdsCli   *gds.Client
	resolver Resolver
	store    *collection.Store
	clock    func() time.Time

	matcher filter.Matcher // user profiles
	aux     filter.Matcher // auxiliary profiles installed at this server

	mu sync.Mutex
	// profilesByClient indexes user profile IDs per client for unsubscribe
	// bookkeeping and listing.
	profilesByClient map[string]map[string]bool
	// compositeProfiles holds registered composite (temporal) profiles by
	// ID; their primitive steps live in the matcher as marked step
	// profiles, their state machines in the composite engine.
	compositeProfiles map[string]*profile.Profile
	// forwardedAux records the aux profiles this server pushed to other
	// servers: key = profile ID, value = destination server name.
	forwardedAux map[string]string

	dedup *event.Dedup
	retry *queue.Queue

	// composite drives the temporal state machines; its firings are
	// synthesized into notifications and enqueued on the delivery
	// pipeline, so composite alerts inherit durability and backpressure.
	composite    *composite.Engine
	compTickStop chan struct{}
	compTickWG   sync.WaitGroup

	// delivery decouples client notification from the match path; matched
	// notifications are enqueued, never delivered synchronously.
	delivery     *delivery.Pipeline
	ownsDelivery bool

	// routing selects broadcast (default), multicast or content
	// dissemination; groupRefs/groupsByProfile track multicast membership
	// per profile.
	routing         RoutingMode
	groupRefs       map[string]int
	groupsByProfile map[string][]string

	// advertised is the canonical profile digest last pushed to the GDS in
	// content mode ("" plus advertisedOnce=false when none was sent);
	// contentFloodUntil keeps the flood fallback open while routing tables
	// warm up. advMu serialises digest compute+send so concurrent churn
	// cannot reorder advertisements on the wire; it also guards the
	// incremental digestCache.
	advMu             sync.Mutex
	digestCache       profile.Digest
	digestCacheOK     bool
	advertised        string
	advertisedOnce    bool
	contentWarmup     time.Duration
	contentFloodUntil time.Time

	// replSink observes replicable state changes (profile churn, dedup
	// admissions) for the primary end of internal/replica; replStats is
	// the replication end whose counters Stats() merges.
	replSink  ReplicationSink
	replStats ReplicaStatsProvider

	// qos is the admission controller (nil = admission disabled); read
	// under mu so SetQoS can swap it at runtime.
	qos *qos.Controller

	// tracer records pipeline spans; nil *trace.Tracer no-ops, so the
	// untraced hot path pays one pointer check per call site.
	tracer *trace.Tracer

	// log is the scoped structured logger; nil *logging.Logger no-ops the
	// same way, so an unwired service pays one pointer check per site.
	log *logging.Logger

	idCounter atomic.Uint64
	stats     ServiceStats
}

// ServiceStats counts the service's externally visible work. The
// Composite* fields are filled from the composite engine at snapshot time.
type ServiceStats struct {
	EventsPublished    int64
	EventsReceived     int64
	DuplicatesDropped  int64
	Notifications      int64 // notifications enqueued to the delivery pipeline
	AuxForwards        int64 // events forwarded over the GS network
	Transforms         int64 // events renamed to a super-collection
	CycleRefusals      int64
	AuxInstallsSent    int64
	AuxCancelsSent     int64
	BroadcastsSent     int64
	AdvertisementsSent int64         // profile-digest advertisements (content routing)
	FilterTime         time.Duration // cumulative local filtering time
	NotifyFailures     int64         // notifications refused by the pipeline
	ForwardingFailures int64         // queued for retry
	// ReceiveLatency accumulates the (virtual or wall-clock) transit
	// latency of events received via GDS dissemination; divide by
	// EventsReceived for the mean. ReceiveHops accumulates their relay
	// counts.
	ReceiveLatency time.Duration
	ReceiveHops    int64
	// Composite-engine state (internal/composite).
	CompositePrimitives     int64 // step matches consumed by state machines
	CompositeFirings        int64 // synthesized composite notifications
	CompositeDigestFlushes  int64 // non-empty digest flushes (subset of firings)
	CompositeWindowsExpired int64 // instances dropped by closed time windows
	CompositeLiveInstances  int64 // currently open instances (gauge)
	// Replication state (internal/replica), filled from the registered
	// ReplicaStatsProvider at snapshot time.
	ReplicaRole      string // "primary", "standby" or "" (off)
	ReplicaStreamSeq uint64 // stream records sent (primary) / applied (standby)
	ReplicaStreamed  int64  // records shipped or applied
	ReplicaDropped   int64  // records dropped while no standby attached
	ReplicaErrors    int64  // stream transport / apply failures
	ReplicaSnapshots int64  // full snapshots sent or applied
	ReplicaResyncs   int64  // snapshot catch-ups after gaps
	ReplicaPromoted  bool   // standby has taken over
	// QoS admission accounting (internal/qos, nil controller = all zero).
	// Every non-composite-step match lands in exactly one of admitted,
	// deferred, coalesced or NotifyFailures — nothing is silently lost.
	QoSAdmitted  int64 // matches enqueued for immediate delivery (realtime always lands here)
	QoSDeferred  int64 // over-quota normal matches parked for delayed delivery
	QoSCoalesced int64 // over-quota bulk matches folded into a pending digest
	QoSDigests   int64 // coalesced digest notifications synthesized
	// ReplicaStreamLag is the primary's unconfirmed stream window (sent
	// minus standby-acknowledged records); 0 on standbys and with
	// replication off. The health plane's replica-stream-lag rule reads it.
	ReplicaStreamLag uint64
	// HealthAlerts counts health-plane meta-alert events published into the
	// pipeline (PublishHealthAlert).
	HealthAlerts int64
}

// Queued payload kinds for the retry queue.
type queuedForward struct {
	destServer string
	env        *protocol.Envelope
}

// New assembles a Service from cfg.
func New(cfg Config) (*Service, error) {
	if cfg.ServerName == "" {
		return nil, errors.New("core: ServerName required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("core: Transport required")
	}
	s := &Service{
		name:              cfg.ServerName,
		addr:              cfg.ServerAddr,
		tr:                cfg.Transport,
		gdsCli:            cfg.GDS,
		resolver:          cfg.Resolver,
		store:             cfg.Store,
		clock:             cfg.Clock,
		matcher:           cfg.Matcher,
		aux:               filter.NewEqualityPreferred(),
		profilesByClient:  make(map[string]map[string]bool),
		compositeProfiles: make(map[string]*profile.Profile),
		forwardedAux:      make(map[string]string),
		dedup:             event.NewDedup(cfg.DedupCapacity),
	}
	s.composite = composite.NewEngine(composite.Config{
		MaxInstances: cfg.CompositeMaxInstances,
		Emit:         s.emitComposite,
	})
	if s.clock == nil {
		s.clock = time.Now
	}
	s.contentWarmup = cfg.ContentWarmup
	if s.contentWarmup == 0 {
		s.contentWarmup = DefaultContentWarmup
	} else if s.contentWarmup < 0 {
		s.contentWarmup = 0
	}
	if s.matcher == nil {
		s.matcher = filter.NewEqualityPreferred()
	}
	s.qos = cfg.QoS
	s.tracer = cfg.Tracer
	s.log = cfg.Log
	if s.resolver == nil && s.gdsCli != nil {
		s.resolver = s.gdsCli
	}
	s.delivery = cfg.Delivery
	if s.delivery == nil {
		dcfg := delivery.Config{}
		if cfg.DeliveryConfig != nil {
			dcfg = *cfg.DeliveryConfig
		}
		if dcfg.Tracer == nil {
			dcfg.Tracer = cfg.Tracer
		}
		if dcfg.Log == nil && cfg.Log != nil {
			dcfg.Log = cfg.Log.Recorder().For("delivery")
		}
		p, err := delivery.NewPipeline(dcfg)
		if err != nil {
			return nil, err
		}
		s.delivery = p
		s.ownsDelivery = true
	}
	q, err := queue.New(s.sendQueued)
	if err != nil {
		return nil, err
	}
	s.retry = q
	return s, nil
}

// Close stops the retry queue and, when the service built its own delivery
// pipeline, flushes and closes it (compacting durable mailboxes). A pipeline
// supplied via Config.Delivery belongs to the caller and is left running.
func (s *Service) Close() error {
	s.stopCompositeTicker()
	s.retry.Stop()
	if s.ownsDelivery {
		return s.delivery.Close()
	}
	return nil
}

// Delivery exposes the notification pipeline (metrics, pending mailboxes).
func (s *Service) Delivery() *delivery.Pipeline { return s.delivery }

// SetQoS installs (or, with nil, removes) the admission controller at
// runtime. In-flight deferred traffic and pending coalesced digests are
// unaffected: they drain through their normal paths.
func (s *Service) SetQoS(c *qos.Controller) {
	s.mu.Lock()
	s.qos = c
	s.mu.Unlock()
}

// QoS returns the installed admission controller (nil when disabled).
func (s *Service) QoS() *qos.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qos
}

// Tracer returns the service's span recorder (nil when tracing is off).
func (s *Service) Tracer() *trace.Tracer { return s.tracer }

// DrainDeliveries blocks until every enqueued notification is delivered or
// parked. Simulations and tests call it to observe a quiescent state;
// notifications parked for detached clients stay in their mailboxes.
func (s *Service) DrainDeliveries(ctx context.Context) error {
	return s.delivery.Drain(ctx)
}

// Name returns the server name.
func (s *Service) Name() string { return s.name }

// Retry exposes the retry queue (simulations flush it after healing
// partitions; live deployments call Retry().Start).
func (s *Service) Retry() *queue.Queue { return s.retry }

// Stats returns a snapshot of counters, merging the composite engine's and
// the replication end's.
func (s *Service) Stats() ServiceStats {
	cs := s.composite.Stats()
	s.mu.Lock()
	rp := s.replStats
	out := s.stats
	s.mu.Unlock()
	out.CompositePrimitives = cs.Primitives
	out.CompositeFirings = cs.Firings
	out.CompositeDigestFlushes = cs.DigestFlushes
	out.CompositeWindowsExpired = cs.WindowsExpired
	out.CompositeLiveInstances = cs.LiveInstances
	if rp != nil {
		rs := rp.ReplicaStats()
		out.ReplicaRole = rs.Role
		out.ReplicaStreamSeq = rs.StreamSeq
		out.ReplicaStreamed = rs.Streamed
		out.ReplicaDropped = rs.Dropped
		out.ReplicaErrors = rs.Errors
		out.ReplicaSnapshots = rs.Snapshots
		out.ReplicaResyncs = rs.Resyncs
		out.ReplicaPromoted = rs.Promoted
		out.ReplicaStreamLag = rs.StreamLag
	}
	return out
}

// nextID mints a server-scoped unique identifier.
func (s *Service) nextID(prefix string) string {
	n := s.idCounter.Add(1)
	return s.name + "-" + prefix + "-" + strconv.FormatUint(n, 10)
}

// ---------------------------------------------------------------------------
// Subscriptions (user profiles)

// RegisterNotifier attaches a delivery sink for a client and drains any
// notifications parked in the client's mailbox while it was away (paper §7
// reconnect semantics, extended from profiles to notifications). The
// pipeline owns the registration; the service keeps no sink state.
func (s *Service) RegisterNotifier(client string, n Notifier) {
	s.delivery.Attach(client, delivererFor(n))
}

// delivererFor adapts a Notifier to the pipeline's batch deliverer,
// preferring one round-trip per batch when the sink supports it.
func delivererFor(n Notifier) delivery.Deliverer {
	return func(_ string, batch []Notification) error {
		if bn, ok := n.(BatchNotifier); ok {
			return bn.NotifyBatch(batch)
		}
		for _, x := range batch {
			n.Notify(x)
		}
		return nil
	}
}

// UnregisterNotifier removes a client's sink; subsequent notifications park
// in the client's mailbox until it re-registers.
func (s *Service) UnregisterNotifier(client string) {
	s.delivery.Detach(client)
}

// Subscribe registers a user profile owned by client. The profile's ID is
// assigned by the service and returned.
func (s *Service) Subscribe(client string, expr profile.Expr) (string, error) {
	p := profile.NewUser(s.nextID("p"), client, s.name, expr)
	return p.ID, s.addUserProfile(p)
}

// SubscribeQuery registers a continuous-search profile for a collection
// (paper §5: search queries as profile queries).
func (s *Service) SubscribeQuery(client string, coll event.QName, field, query string) (string, error) {
	p, err := profile.FromSearchQuery(s.nextID("p"), client, s.name, coll, field, query)
	if err != nil {
		return "", err
	}
	return p.ID, s.addUserProfile(p)
}

// WatchDocuments registers a "watch this" identity-centred profile.
func (s *Service) WatchDocuments(client string, coll event.QName, docIDs []string) (string, error) {
	p, err := profile.WatchThis(s.nextID("p"), client, s.name, coll, docIDs)
	if err != nil {
		return "", err
	}
	return p.ID, s.addUserProfile(p)
}

// SubscribeProfile registers a caller-constructed user profile.
func (s *Service) SubscribeProfile(p *profile.Profile) error {
	if p.Kind != profile.KindUser {
		return fmt.Errorf("core: SubscribeProfile requires a user profile, got %s", p.Kind)
	}
	return s.addUserProfile(p)
}

func (s *Service) addUserProfile(p *profile.Profile) error {
	if p.IsComposite() {
		if err := s.addCompositeProfile(p); err != nil {
			return err
		}
		s.replicateProfileAdd(p)
		return nil
	}
	if err := s.matcher.Add(p); err != nil {
		return err
	}
	s.mu.Lock()
	set := s.profilesByClient[p.Owner]
	if set == nil {
		set = make(map[string]bool)
		s.profilesByClient[p.Owner] = set
	}
	set[p.ID] = true
	multicast := s.routing == RouteMulticast
	s.mu.Unlock()
	if multicast {
		// Group membership is best effort: a failed join degrades delivery
		// for this profile until the next SetRoutingMode, mirroring the
		// paper's best-effort stance; it never corrupts local state.
		_ = s.joinGroupsFor(context.Background(), p)
	}
	// In content mode a new profile may widen the advertised digest; the
	// covering prune inside makes already-covered additions free.
	s.readvertiseOnChurn(p)
	s.replicateProfileAdd(p)
	return nil
}

// Unsubscribe removes a user profile. Removing an unknown or foreign
// profile is an error (clients can only cancel their own profiles).
func (s *Service) Unsubscribe(client, profileID string) error {
	s.mu.Lock()
	cp := s.compositeProfiles[profileID]
	s.mu.Unlock()
	if cp != nil {
		return s.removeCompositeProfile(client, cp)
	}
	p, ok := s.matcher.Get(profileID)
	if !ok {
		return fmt.Errorf("core: unknown profile %q", profileID)
	}
	if p.CompositeOf != "" {
		// Step profiles are derived state; removing one would silently
		// cripple the parent's state machine.
		return fmt.Errorf("core: %q is a step of composite profile %q; unsubscribe the composite instead", profileID, p.CompositeOf)
	}
	if p.Owner != client {
		return fmt.Errorf("core: profile %q belongs to %q, not %q", profileID, p.Owner, client)
	}
	s.matcher.Remove(profileID)
	// Any digest pending from QoS bulk coalescing dies with the profile:
	// the subscriber cancelled, so its shed backlog is no longer owed.
	s.composite.Remove(qosDigestID(profileID))
	s.mu.Lock()
	if set := s.profilesByClient[client]; set != nil {
		delete(set, profileID)
		if len(set) == 0 {
			delete(s.profilesByClient, client)
		}
	}
	multicast := s.routing == RouteMulticast
	s.mu.Unlock()
	if multicast {
		s.leaveGroupsFor(context.Background(), profileID)
	}
	// In content mode a removed profile may narrow the digest; the
	// re-advertisement lets the directory prune this server again.
	s.readvertiseOnChurn(nil)
	s.replicateProfileRemove(client, profileID)
	return nil
}

// ProfilesOf lists a client's profile IDs.
func (s *Service) ProfilesOf(client string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.profilesByClient[client]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// UserProfileCount reports registered user profiles.
func (s *Service) UserProfileCount() int { return s.matcher.Len() }

// AuxProfileCount reports installed auxiliary profiles.
func (s *Service) AuxProfileCount() int { return s.aux.Len() }
