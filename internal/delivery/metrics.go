package delivery

import (
	"github.com/gsalert/gsalert/internal/metrics"
)

// Metrics are the pipeline's externally visible counters and histograms,
// built on internal/metrics so the experiment harness renders them in the
// same tables as every other subsystem.
type Metrics struct {
	// Enqueued counts notifications accepted by Enqueue.
	Enqueued metrics.Counter
	// Delivered counts notifications successfully handed to a sink.
	Delivered metrics.Counter
	// Parked counts notifications returned to a mailbox because no sink
	// was attached or the sink failed.
	Parked metrics.Counter
	// Retried counts notifications parked after a failed delivery attempt
	// (a subset of Parked).
	Retried metrics.Counter
	// Displaced counts notifications pushed out of a full shard queue by
	// the DropOldest policy (parked, not lost).
	Displaced metrics.Counter
	// Spilled counts notifications diverted to disk by SpillToDisk.
	Spilled metrics.Counter
	// Dropped counts notifications evicted from a full mailbox — the only
	// counter representing actual loss.
	Dropped metrics.Counter
	// Recovered counts notifications restored from mailbox WALs at start.
	Recovered metrics.Counter
	// Batches counts delivery flushes.
	Batches metrics.Counter
	// FlushLatency samples sink round-trip time per flush (µs).
	FlushLatency metrics.Histogram
	// BatchSizes samples notifications per flush.
	BatchSizes metrics.Histogram
}

func newMetrics() *Metrics { return &Metrics{} }

// Snapshot is a point-in-time copy of the counters, convenient for tests
// and stat dumps.
type Snapshot struct {
	Enqueued  int64
	Delivered int64
	Parked    int64
	Retried   int64
	Displaced int64
	Spilled   int64
	Dropped   int64
	Recovered int64
	Batches   int64
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Enqueued:  m.Enqueued.Value(),
		Delivered: m.Delivered.Value(),
		Parked:    m.Parked.Value(),
		Retried:   m.Retried.Value(),
		Displaced: m.Displaced.Value(),
		Spilled:   m.Spilled.Value(),
		Dropped:   m.Dropped.Value(),
		Recovered: m.Recovered.Value(),
		Batches:   m.Batches.Value(),
	}
}
