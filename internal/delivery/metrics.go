package delivery

import (
	"time"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/qos"
)

// Metrics are the pipeline's externally visible counters and histograms,
// built on internal/metrics so the experiment harness renders them in the
// same tables as every other subsystem.
type Metrics struct {
	// Enqueued counts notifications accepted by Enqueue.
	Enqueued metrics.Counter
	// Delivered counts notifications successfully handed to a sink.
	Delivered metrics.Counter
	// Parked counts notifications returned to a mailbox because no sink
	// was attached or the sink failed.
	Parked metrics.Counter
	// Deferred counts notifications parked by QoS admission control
	// (over-quota normal-class traffic): delayed, redelivered by the retry
	// loop or the next attach.
	Deferred metrics.Counter
	// Retried counts notifications parked after a failed delivery attempt
	// (a subset of Parked).
	Retried metrics.Counter
	// Displaced counts notifications pushed out of a full shard queue by
	// the DropOldest policy (parked, not lost).
	Displaced metrics.Counter
	// Spilled counts notifications diverted to disk by SpillToDisk.
	Spilled metrics.Counter
	// Dropped counts notifications evicted from a full mailbox — the only
	// counter representing actual loss.
	Dropped metrics.Counter
	// Recovered counts notifications restored from mailbox WALs at start.
	Recovered metrics.Counter
	// Batches counts delivery flushes.
	Batches metrics.Counter
	// DeliveredByClass splits Delivered by QoS class.
	DeliveredByClass [qos.NumClasses]metrics.Counter
	// ClassLatency samples end-to-end delivery latency (enqueue → sink,
	// including parked dwell time) per QoS class. Lock-free: it sits on the
	// per-notification flush path of every shard worker.
	ClassLatency [qos.NumClasses]metrics.LatencyHistogram
	// FlushLatency samples sink round-trip time per flush.
	FlushLatency metrics.LatencyHistogram
	// BatchSizes samples notifications per flush.
	BatchSizes metrics.Histogram
}

func newMetrics() *Metrics { return &Metrics{} }

// ClassSnapshot is the per-class slice of a Snapshot.
type ClassSnapshot struct {
	Class     string
	Delivered int64
	// P50 and P99 are end-to-end delivery latency quantiles (bucket upper
	// bounds, exact to within 2x).
	P50 time.Duration
	P99 time.Duration
	// P50Text and P99Text render the quantiles human-readable, for the
	// JSON stats endpoint (the raw fields serialize as nanoseconds).
	P50Text string
	P99Text string
}

// Snapshot is a point-in-time copy of the counters, convenient for tests
// and stat dumps.
type Snapshot struct {
	Enqueued  int64
	Delivered int64
	Parked    int64
	Deferred  int64
	Retried   int64
	Displaced int64
	Spilled   int64
	Dropped   int64
	Recovered int64
	Batches   int64
	Classes   [qos.NumClasses]ClassSnapshot
}

// Snapshot captures the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Enqueued:  m.Enqueued.Value(),
		Delivered: m.Delivered.Value(),
		Parked:    m.Parked.Value(),
		Deferred:  m.Deferred.Value(),
		Retried:   m.Retried.Value(),
		Displaced: m.Displaced.Value(),
		Spilled:   m.Spilled.Value(),
		Dropped:   m.Dropped.Value(),
		Recovered: m.Recovered.Value(),
		Batches:   m.Batches.Value(),
	}
	for c := 0; c < qos.NumClasses; c++ {
		p50 := m.ClassLatency[c].Quantile(0.5)
		p99 := m.ClassLatency[c].Quantile(0.99)
		s.Classes[c] = ClassSnapshot{
			Class:     qos.Class(c).String(),
			Delivered: m.DeliveredByClass[c].Value(),
			P50:       p50,
			P99:       p99,
			P50Text:   p50.String(),
			P99Text:   p99.String(),
		}
	}
	return s
}
