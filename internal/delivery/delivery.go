// Package delivery implements the asynchronous notification-delivery
// pipeline that decouples the hot profile-matching path (internal/core) from
// client delivery. The paper's prototype notifies clients synchronously
// inside the filtering step, which both slows the matching loop and silently
// loses alerts for disconnected users; this package extends the paper's §7
// partition-tolerance — "notifications ... would be delayed until the network
// connection is reestablished" — from auxiliary profiles to the
// notifications themselves.
//
// Architecture:
//
//	Enqueue ──▶ per-user mailbox (append; WAL when durable)
//	        ──▶ hash(client) ──▶ shard: per-class queues (bounded)
//	                               │ realtime ─┐
//	                               │ normal  ──┼─ WFQ dequeue ──▶ worker
//	                               │ bulk    ──┘ (qos.Scheduler)
//	                               │ overflow: block / drop-oldest / spill
//	                               ▼
//	                     per-client batch (flush on size / interval)
//	                               ▼
//	                 Deliverer (attached sink) ──▶ ack mailbox
//	                     └─ none attached ──▶ park in mailbox
//
// Each shard keeps one bounded queue per QoS class and services them by
// weighted deficit round-robin (internal/qos), so a bulk flood cannot queue
// ahead of realtime traffic: realtime latency is bounded by its own queue
// depth and service weight, not by total load. Ordering is therefore FIFO
// per client per class; a client's realtime alerts may legitimately overtake
// its earlier bulk alerts.
//
// A parked notification survives until the client re-attaches (reconnect),
// at which point the mailbox is drained back through the pipeline. With a
// WAL directory configured, parked notifications also survive process
// restarts: the write-ahead log is replayed on open and compacted into a
// snapshot once enough of it is dead.
package delivery

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/trace"
)

// Notification is one alert addressed to one client. core.Notification is an
// alias of this type so the match path hands matches over without copying.
type Notification struct {
	// Client is the recipient.
	Client string
	// ProfileID identifies the matching profile.
	ProfileID string
	// Event is the matching event.
	Event *event.Event
	// DocIDs are the matching documents (empty for event-level matches).
	DocIDs []string
	// Composite names the composite operator ("sequence", "count",
	// "digest") behind a synthesized alert; empty for primitive alerts.
	Composite string
	// Contributing are the primitive events behind a composite alert, in
	// arrival order; Event then holds the synthesized summary event. Nil
	// for primitive alerts.
	Contributing []*event.Event
	// Class is the QoS priority class inherited from the matching profile;
	// it selects the shard queue (and so the scheduling weight) the
	// notification is serviced from. Zero value = qos.ClassNormal.
	Class qos.Class
	// At is the local delivery time.
	At time.Time
	// Trace is the trace context of the admission decision that produced
	// this notification; the pipeline's queue-wait, flush and notify spans
	// chain under it. The zero value (untraced) costs nothing.
	Trace trace.Context
}

// Deliverer pushes one batch of notifications to one client. A non-nil error
// parks the batch in the client's mailbox for redelivery (the transport or
// client is treated as temporarily unreachable).
type Deliverer func(client string, batch []Notification) error

// OverflowPolicy selects what Enqueue does when a shard queue is full.
type OverflowPolicy int

const (
	// Block applies backpressure: Enqueue waits for queue space. This is
	// the default — producers (collection builds) slow down rather than
	// lose alerts.
	Block OverflowPolicy = iota
	// DropOldest displaces the oldest queued notification to its mailbox
	// (parked, not lost) to admit the new one. Freshness over latency.
	DropOldest
	// SpillToDisk diverts the overflow to a per-shard disk FIFO that the
	// worker re-ingests as the queue empties. Requires Config.Dir.
	SpillToDisk
)

// String names the policy (flag values of cmd/gs-server).
func (p OverflowPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case SpillToDisk:
		return "spill"
	default:
		return fmt.Sprintf("overflow-policy-%d", int(p))
	}
}

// ParseOverflowPolicy maps a flag value back to a policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block", "":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "spill":
		return SpillToDisk, nil
	default:
		return 0, fmt.Errorf("delivery: unknown overflow policy %q (want block, drop-oldest or spill)", s)
	}
}

// Defaults used by Config when fields are zero.
const (
	DefaultShards        = 4
	DefaultQueueDepth    = 1024
	DefaultBatchSize     = 32
	DefaultFlushInterval = 25 * time.Millisecond
	DefaultMailboxCap    = 4096
	DefaultRetryInterval = time.Second
)

// Config assembles a Pipeline.
type Config struct {
	// Shards is the number of worker pools; clients are FNV-hashed onto
	// shards so one client's notifications stay ordered. Default 4.
	Shards int
	// QueueDepth bounds each shard's in-memory queue. Default 1024.
	QueueDepth int
	// Overflow selects the full-queue behaviour. Default Block.
	Overflow OverflowPolicy
	// BatchSize flushes a client's batch when it reaches this many
	// notifications. Default 32.
	BatchSize int
	// FlushInterval flushes all open batches at least this often, bounding
	// delivery latency for slow trickles. Default 25ms.
	FlushInterval time.Duration
	// Dir enables durability: per-user write-ahead logs (and the spill
	// files of SpillToDisk) live here. Empty keeps mailboxes memory-only.
	Dir string
	// MailboxCap bounds parked notifications per user; beyond it the
	// oldest parked alerts are dropped (counted). Default 4096.
	MailboxCap int
	// CompactThreshold rewrites a mailbox WAL once it holds this many dead
	// records (delivered or dropped). Default 1024.
	CompactThreshold int
	// RetryInterval schedules redelivery of notifications parked by a
	// FAILED delivery attempt while the client stays attached (a client
	// that detaches is drained by its next Attach instead). Default 1s.
	// QoS-deferred notifications (Defer) ride the same schedule.
	RetryInterval time.Duration
	// ClassWeights sets the per-class WFQ service weights of the shard
	// workers; non-positive entries fall back to qos.DefaultWeights.
	ClassWeights [qos.NumClasses]int
	// Tracer records the pipeline's queue-wait, flush and notify spans for
	// sampled notifications. nil disables tracing.
	Tracer *trace.Tracer
	// Log is the pipeline's component logger (docs/LOGGING.md): QoS
	// deferrals at debug, displacements, evictions and failed deliveries at
	// warn, carrying the notification's trace ID where one is in scope. A
	// nil logger disables every site at one pointer check.
	Log *logging.Logger
}

func (c *Config) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	if c.MailboxCap <= 0 {
		c.MailboxCap = DefaultMailboxCap
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = defaultCompactThreshold
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = DefaultRetryInterval
	}
}

// item is one queued delivery: the notification plus its mailbox sequence.
// For traced notifications, qw is the open queue-wait span (admit →
// dequeue) and deq the dequeue time the flush span starts from; both are
// zero on the untraced hot path and after a disk-spill round trip (the
// trace context itself survives in n.Trace, so later stages still chain).
type item struct {
	n   Notification
	seq uint64
	qw  trace.Span
	deq time.Time
}

// shard is one worker pool: one bounded queue per QoS class, an optional
// disk spill and a goroutine batching per client. The worker services the
// class queues by weighted deficit round-robin.
type shard struct {
	chs [qos.NumClasses]chan item
	// sched is the worker's WFQ policy. Only the worker calls Pick;
	// observability scrapes read the atomic credits via sched.Credits().
	sched *qos.Scheduler
	// spills are the per-class disk FIFOs of SpillToDisk (nil entries
	// otherwise). One spill per class keeps re-ingestion independent: a
	// class's spilled backlog drains as soon as its own queue idles, never
	// waiting on another class's sustained load.
	spills [qos.NumClasses]*spillQueue
	// admitMu serialises SpillToDisk admissions: the spill-empty check and
	// the queue/spill placement must be atomic or two concurrent admits
	// for one client could land out of order.
	admitMu sync.Mutex
	poke    chan struct{}
	done    chan struct{}
}

// delivererEntry is a registered sink plus the generation of the Attach
// that installed it; flush uses the generation to detect a re-Attach that
// raced a failed or sink-less delivery.
type delivererEntry struct {
	fn  Deliverer
	gen uint64
}

// Pipeline is the sharded asynchronous delivery engine.
type Pipeline struct {
	cfg    Config
	shards []*shard
	m      *Metrics

	mu         sync.Mutex
	deliverers map[string]delivererEntry
	attachGen  uint64
	mailboxes  map[string]*mailbox
	// retryAt schedules a mailbox re-drain for clients whose attached sink
	// failed a delivery; the retry loop fires due entries.
	retryAt map[string]time.Time
	closed  bool
	// obs, when set, observes every logical mailbox mutation — appends,
	// delivery acks and cap evictions — so a replication stream can mirror
	// the pending set on a standby (SetObserver).
	obs func([]MailboxOp)

	// inflight counts notifications admitted to a shard queue (or spill)
	// and not yet delivered, parked or displaced. Drain waits for zero.
	inflight atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// ErrClosed reports an Enqueue after Close.
var ErrClosed = errors.New("delivery: pipeline closed")

// NewPipeline builds and starts a pipeline. With cfg.Dir set, existing
// mailbox WALs under it are recovered immediately (their notifications stay
// parked until the owning clients attach).
func NewPipeline(cfg Config) (*Pipeline, error) {
	cfg.fillDefaults()
	if cfg.Overflow == SpillToDisk && cfg.Dir == "" {
		return nil, errors.New("delivery: SpillToDisk requires Config.Dir")
	}
	p := &Pipeline{
		cfg:        cfg,
		m:          newMetrics(),
		deliverers: make(map[string]delivererEntry),
		mailboxes:  make(map[string]*mailbox),
		retryAt:    make(map[string]time.Time),
		stop:       make(chan struct{}),
	}
	if cfg.Dir != "" {
		boxes, err := recoverMailboxes(cfg.Dir, cfg.MailboxCap, cfg.CompactThreshold)
		if err != nil {
			return nil, err
		}
		for user, mb := range boxes {
			p.mailboxes[user] = mb
			p.m.Recovered.Add(int64(mb.pendingCount()))
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			sched: qos.NewScheduler(cfg.ClassWeights),
			poke:  make(chan struct{}, 1),
			done:  make(chan struct{}),
		}
		for c := range sh.chs {
			sh.chs[c] = make(chan item, cfg.QueueDepth)
		}
		if cfg.Overflow == SpillToDisk {
			for c := 0; c < qos.NumClasses; c++ {
				sq, err := newSpillQueue(cfg.Dir, i, qos.Class(c))
				if err != nil {
					return nil, err
				}
				sh.spills[c] = sq
			}
		}
		p.shards = append(p.shards, sh)
		p.wg.Add(1)
		go p.worker(sh)
	}
	p.wg.Add(1)
	go p.retryLoop()
	return p, nil
}

// retryLoop re-drains the mailboxes of clients whose attached sink failed a
// delivery, once their backoff elapses. Without it, alerts parked by a
// transient transport error would wait for the client's next reconnect even
// though the client never went away.
func (p *Pipeline) retryLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		type drain struct {
			client string
			mb     *mailbox
			items  []item
		}
		var due []drain
		p.mu.Lock()
		for client, at := range p.retryAt {
			if now.Before(at) {
				continue
			}
			delete(p.retryAt, client)
			if _, attached := p.deliverers[client]; !attached {
				continue // the next Attach drains instead
			}
			if mb := p.mailboxes[client]; mb != nil {
				if items := mb.takePending(); len(items) > 0 {
					due = append(due, drain{client: client, mb: mb, items: items})
				}
			}
		}
		p.mu.Unlock()
		for _, d := range due {
			for i, it := range d.items {
				if err := p.admit(it, d.mb); err != nil {
					// admit parked the failed item itself; return the rest
					// of the snapshot too and re-arm the client's retry so
					// a transient spill/shutdown error delays the drain
					// rather than stranding it until the next Attach. The
					// loop itself must survive: Defer's delayed-not-lost
					// promise rides on it.
					for _, rest := range d.items[i+1:] {
						d.mb.park(rest.seq)
					}
					p.mu.Lock()
					if !p.closed {
						p.retryAt[d.client] = time.Now().Add(p.cfg.RetryInterval)
					}
					p.mu.Unlock()
					break
				}
			}
		}
	}
}

// shardOf hashes a client onto a shard, keeping one client's notifications
// on one worker (per-client FIFO ordering).
func (p *Pipeline) shardOf(client string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(client))
	return p.shards[int(h.Sum32())%len(p.shards)]
}

// mailboxOf returns (creating on demand) the client's mailbox.
func (p *Pipeline) mailboxOf(client string) (*mailbox, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mb := p.mailboxes[client]
	if mb == nil {
		var err error
		mb, err = newMailbox(p.cfg.Dir, client, p.cfg.MailboxCap, p.cfg.CompactThreshold)
		if err != nil {
			return nil, err
		}
		p.mailboxes[client] = mb
	}
	return mb, nil
}

// Enqueue admits one notification. It appends to the client's mailbox first
// (write-ahead: with durability on, a process crash after Enqueue returns
// cannot lose the alert — appends are buffered writes, so power-loss
// durability is bounded by the OS page cache; the WAL is fsynced on
// compaction and close), then queues it for asynchronous delivery, applying
// the configured overflow policy when the shard is saturated.
func (p *Pipeline) Enqueue(n Notification) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()

	mb, err := p.mailboxOf(n.Client)
	if err != nil {
		return err
	}
	seq, evicted, err := mb.add(n)
	if err != nil {
		return err
	}
	p.m.Dropped.Add(int64(len(evicted)))
	p.m.Enqueued.Inc()
	// Replicate the append (and any cap evictions) before the item can be
	// delivered: its eventual ack then always follows its append on the
	// standby's stream.
	if obs := p.observer(); obs != nil {
		ops := make([]MailboxOp, 0, 1+len(evicted))
		ops = append(ops, MailboxOp{Client: n.Client, Seq: seq, N: n})
		for _, gone := range evicted {
			ops = append(ops, MailboxOp{Client: n.Client, Seq: gone, Ack: true})
		}
		obs(ops)
	}
	return p.admit(item{n: n, seq: seq}, mb)
}

// classOf bounds a notification's class to a valid queue index (a corrupt
// WAL or future wire value must not panic the worker).
func classOf(n Notification) qos.Class {
	if n.Class >= qos.NumClasses {
		return qos.ClassNormal
	}
	return n.Class
}

// admit places an item on its shard's queue for the item's class, honouring
// the overflow policy. The item must already be present (inflight) in mb.
// Class queues are independent: a saturated bulk queue never blocks (Block)
// nor displaces (DropOldest) realtime admissions.
func (p *Pipeline) admit(it item, mb *mailbox) error {
	sh := p.shardOf(it.n.Client)
	class := classOf(it.n)
	ch := sh.chs[class]
	p.inflight.Add(1)
	// Queue-wait starts at admission; Block-policy backpressure time counts
	// as queue wait, which is exactly what the attribution table should say
	// about a saturated shard.
	it.qw = p.cfg.Tracer.StartChild(it.n.Trace, trace.StageQueueWait)
	it.qw.SetClass(class.String())
	switch p.cfg.Overflow {
	case DropOldest:
		for {
			select {
			case ch <- it:
				return nil
			default:
			}
			select {
			case old := <-ch:
				// Displace the oldest queued item of the same class back to
				// its mailbox: parked, deliverable on the next attach/drain.
				old.qw.SetAttr("outcome", "displaced")
				old.qw.Finish()
				p.parkItems([]item{old})
				p.m.Displaced.Inc()
				p.inflight.Add(-1)
				p.cfg.Log.WarnCtx(old.n.Trace, "queued notification displaced",
					logging.String("client", old.n.Client), logging.String("class", class.String()))
			default:
				// Queue drained concurrently; retry the send.
			}
		}
	case SpillToDisk:
		// Once anything of a class is spilled, later items of that class
		// must also spill: the worker drains a class's queue before its
		// spill, so admitting a newer item to the queue while older
		// same-class ones sit on disk would reorder a client's
		// notifications. admitMu makes the check-and-place atomic against
		// concurrent admits.
		sh.admitMu.Lock()
		if sh.spills[class].len() == 0 {
			select {
			case ch <- it:
				sh.admitMu.Unlock()
				return nil
			default:
			}
		}
		// The span cannot ride to disk: close the in-memory leg here. The
		// context in it.n.Trace survives the round trip, so flush/notify
		// spans still chain (under the qos span) after re-ingestion.
		it.qw.SetAttr("outcome", "spilled")
		it.qw.Finish()
		it.qw = trace.Span{}
		err := sh.spills[class].push(it)
		sh.admitMu.Unlock()
		if err != nil {
			p.inflight.Add(-1)
			p.parkItems([]item{it})
			return err
		}
		p.m.Spilled.Inc()
		p.cfg.Log.DebugCtx(it.n.Trace, "notification spilled to disk",
			logging.String("client", it.n.Client), logging.String("class", class.String()))
		return nil
	default: // Block: backpressure the producer.
		select {
		case ch <- it:
			return nil
		case <-p.stop:
			// Shutting down: the item stays in the mailbox, parked (and,
			// when durable, recovered on the next start).
			p.inflight.Add(-1)
			p.parkItems([]item{it})
			return ErrClosed
		}
	}
}

// Defer parks one notification in the client's mailbox WITHOUT queueing it
// for immediate delivery — the QoS degradation for over-quota normal-class
// traffic: delayed, never lost. The notification is durably appended (WAL
// when configured, replicated when observed) and redelivered by the retry
// loop once RetryInterval elapses, or by the client's next Attach, whichever
// comes first.
func (p *Pipeline) Defer(n Notification) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	mb, err := p.mailboxOf(n.Client)
	if err != nil {
		return err
	}
	seq, evicted, err := mb.add(n)
	if err != nil {
		return err
	}
	mb.park(seq)
	p.m.Dropped.Add(int64(len(evicted)))
	p.m.Deferred.Inc()
	p.cfg.Log.DebugCtx(n.Trace, "notification deferred to mailbox",
		logging.String("client", n.Client))
	if len(evicted) > 0 {
		p.cfg.Log.Warn("mailbox evicted oldest parked notifications",
			logging.String("client", n.Client), logging.Int("evicted", int64(len(evicted))))
	}
	if obs := p.observer(); obs != nil {
		ops := make([]MailboxOp, 0, 1+len(evicted))
		ops = append(ops, MailboxOp{Client: n.Client, Seq: seq, N: n})
		for _, gone := range evicted {
			ops = append(ops, MailboxOp{Client: n.Client, Seq: gone, Ack: true})
		}
		obs(ops)
	}
	p.mu.Lock()
	if _, due := p.retryAt[n.Client]; !due {
		p.retryAt[n.Client] = time.Now().Add(p.cfg.RetryInterval)
	}
	p.mu.Unlock()
	return nil
}

// Attach registers the delivery sink for a client and schedules redelivery
// of everything parked in the client's mailbox (the paper-§7 reconnect
// drain). Attaching replaces any previous sink. Registration and the
// pending snapshot happen under one lock so a flush that is concurrently
// parking this client's batch either parks before (we pick the entries up
// here) or re-checks after and finds the new sink itself.
func (p *Pipeline) Attach(client string, d Deliverer) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.attachGen++
	p.deliverers[client] = delivererEntry{fn: d, gen: p.attachGen}
	mb := p.mailboxes[client]
	var items []item
	if mb != nil {
		items = mb.takePending()
	}
	p.mu.Unlock()
	for i, it := range items {
		if err := p.admit(it, mb); err != nil {
			// admit parked the failed item itself; return the rest of the
			// snapshot to the mailbox so a later Attach can still see it.
			for _, rest := range items[i+1:] {
				mb.park(rest.seq)
			}
			return
		}
	}
}

// Detach removes a client's sink; subsequent deliveries park in the mailbox
// until the client re-attaches.
func (p *Pipeline) Detach(client string) {
	p.mu.Lock()
	delete(p.deliverers, client)
	p.mu.Unlock()
}

// Pending reports how many notifications are parked in a client's mailbox
// (excluding those currently queued for delivery).
func (p *Pipeline) Pending(client string) int {
	p.mu.Lock()
	mb := p.mailboxes[client]
	p.mu.Unlock()
	if mb == nil {
		return 0
	}
	return mb.parkedCount()
}

// QueueDepths reports the current occupancy of each shard's queues (summed
// across classes).
func (p *Pipeline) QueueDepths() []int {
	out := make([]int, len(p.shards))
	for i, sh := range p.shards {
		for _, ch := range sh.chs {
			out[i] += len(ch)
		}
	}
	return out
}

// ClassQueueDepths reports the occupancy of every shard's per-class queues,
// indexed [shard][class] — the per-shard/per-class depth panel of the
// Prometheus exposition.
func (p *Pipeline) ClassQueueDepths() [][qos.NumClasses]int {
	out := make([][qos.NumClasses]int, len(p.shards))
	for i, sh := range p.shards {
		for c, ch := range sh.chs {
			out[i][c] = len(ch)
		}
	}
	return out
}

// SchedulerCredits reports the remaining DRR deficit credit of every shard
// worker's WFQ scheduler, indexed [shard][class]. Safe to call while the
// workers run (the credits are atomics).
func (p *Pipeline) SchedulerCredits() [][qos.NumClasses]int64 {
	out := make([][qos.NumClasses]int64, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.sched.Credits()
	}
	return out
}

// SpillDepths reports how many notifications sit in each shard's on-disk
// spill FIFOs (all classes summed); zeros when SpillToDisk is off.
func (p *Pipeline) SpillDepths() []int {
	out := make([]int, len(p.shards))
	for i, sh := range p.shards {
		for _, sq := range sh.spills {
			if sq != nil {
				out[i] += sq.len()
			}
		}
	}
	return out
}

// Shards reports the configured shard count.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Metrics exposes the pipeline's counters and histograms.
func (p *Pipeline) Metrics() *Metrics { return p.m }

// Drain flushes every shard and blocks until no notification is queued,
// batched or spilled (parked mailbox contents do not count: they are at
// rest until their client attaches). Simulations and tests call it to make
// asynchronous delivery deterministic.
func (p *Pipeline) Drain(ctx context.Context) error {
	for {
		if p.inflight.Load() == 0 {
			return nil
		}
		for _, sh := range p.shards {
			select {
			case sh.poke <- struct{}{}:
			default:
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// Close stops the workers (flushing open batches), compacts and closes every
// mailbox, and rejects further Enqueues.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	// An Enqueue that raced Close may have landed an item on a queue after
	// its worker exited (the buffered send and the stop case are both ready
	// in admit's select). Park such stragglers so they stay visible in
	// their mailboxes and inflight returns to zero.
	for _, sh := range p.shards {
		for _, ch := range sh.chs {
		drainClass:
			for {
				select {
				case it := <-ch:
					p.parkItems([]item{it})
					p.inflight.Add(-1)
				default:
					break drainClass
				}
			}
		}
		for _, sq := range sh.spills {
			if sq == nil {
				continue
			}
			for {
				it, ok, dropped, err := sq.pop()
				if err != nil {
					p.inflight.Add(-int64(dropped))
					p.m.Dropped.Add(int64(dropped))
					break
				}
				if !ok {
					break
				}
				p.parkItems([]item{it})
				p.inflight.Add(-1)
			}
		}
	}
	var firstErr error
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, mb := range p.mailboxes {
		if err := mb.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, sh := range p.shards {
		for _, sq := range sh.spills {
			if sq == nil {
				continue
			}
			if err := sq.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Worker

// worker is one shard's goroutine: it services the per-class queues by
// weighted deficit round-robin, accumulates per-client batches and flushes
// them on size, interval, drain pokes and shutdown.
func (p *Pipeline) worker(sh *shard) {
	defer p.wg.Done()
	defer close(sh.done)
	batches := make(map[string][]item)
	ticker := time.NewTicker(p.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		// Fast path: while work is queued, service it in WFQ order. The
		// inline ticker check keeps interval flushes honest under sustained
		// load (the select below is only reached when the queues go idle).
		if it, ok := p.tryDequeue(sh, sh.sched); ok {
			p.ingest(sh, batches, it)
			// A class whose queue just went idle may have spilled overflow
			// waiting; re-ingest it even while OTHER classes stay busy — a
			// bulk flood must never pin spilled realtime items on disk.
			p.popSpill(sh, batches)
			select {
			case <-ticker.C:
				p.flushAll(batches)
			default:
			}
			continue
		}
		if p.popSpill(sh, batches) {
			continue
		}
		select {
		case it := <-sh.chs[qos.ClassRealtime]:
			p.ingest(sh, batches, it)
		case it := <-sh.chs[qos.ClassNormal]:
			p.ingest(sh, batches, it)
		case it := <-sh.chs[qos.ClassBulk]:
			p.ingest(sh, batches, it)
		case <-ticker.C:
			p.drainQueue(sh, batches)
			p.flushAll(batches)
		case <-sh.poke:
			p.drainQueue(sh, batches)
			p.flushAll(batches)
		case <-p.stop:
			p.drainQueue(sh, batches)
			p.flushAll(batches)
			return
		}
	}
}

// popSpill re-ingests at most one spilled item per class, for every class
// whose own queue is currently empty (the per-class no-reorder guard: a
// class's queued items predate its spilled ones, so the spill may only feed
// in once the queue idles). Returns whether anything was re-ingested.
func (p *Pipeline) popSpill(sh *shard, batches map[string][]item) bool {
	popped := false
	for _, c := range qos.ByPriority {
		sq := sh.spills[c]
		if sq == nil || sq.len() == 0 || len(sh.chs[c]) > 0 {
			continue
		}
		it, ok, dropped, err := sq.pop()
		if err != nil {
			// The spill reset itself; settle the accounting for the
			// discarded queue copies (durable copies stay in the WALs).
			p.inflight.Add(-int64(dropped))
			p.m.Dropped.Add(int64(dropped))
			continue
		}
		if ok {
			p.ingest(sh, batches, it)
			popped = true
		}
	}
	return popped
}

// tryDequeue takes the next queued item in WFQ order without blocking. A
// DropOldest displacer may race the receive; the spent credit is then simply
// forfeited and the next iteration re-picks.
func (p *Pipeline) tryDequeue(sh *shard, sched *qos.Scheduler) (item, bool) {
	for tries := 0; tries < 2; tries++ {
		c, ok := sched.Pick(func(cl qos.Class) bool { return len(sh.chs[cl]) > 0 })
		if !ok {
			return item{}, false
		}
		select {
		case it := <-sh.chs[c]:
			return it, true
		default:
		}
	}
	return item{}, false
}

// ingest adds one item to its client batch, flushing on size.
func (p *Pipeline) ingest(sh *shard, batches map[string][]item, it item) {
	if it.n.Trace.Sampled() {
		it.qw.Finish()
		it.deq = time.Now()
	}
	b := append(batches[it.n.Client], it)
	if len(b) >= p.cfg.BatchSize {
		delete(batches, it.n.Client)
		p.flush(it.n.Client, b)
		return
	}
	batches[it.n.Client] = b
}

// drainQueue consumes everything currently queued (and spilled) without
// blocking, classes in priority order.
func (p *Pipeline) drainQueue(sh *shard, batches map[string][]item) {
	for {
		got := false
		for _, c := range qos.ByPriority {
			select {
			case it := <-sh.chs[c]:
				p.ingest(sh, batches, it)
				got = true
			default:
			}
		}
		if got {
			continue
		}
		if !p.popSpill(sh, batches) {
			return
		}
	}
}

// flushAll flushes every open batch.
func (p *Pipeline) flushAll(batches map[string][]item) {
	for client, b := range batches {
		delete(batches, client)
		p.flush(client, b)
	}
}

// flush delivers one client's batch through its attached sink, acking the
// mailbox on success and parking on failure or when no sink is attached.
// Parking happens under p.mu after re-reading the sink registration, so a
// concurrent Attach cannot slip between the lookup and the park and leave
// the batch stranded: either the Attach's takePending sees the parked
// entries, or flush sees the freshly attached sink and delivers to it.
func (p *Pipeline) flush(client string, b []item) {
	if len(b) == 0 {
		return
	}
	defer p.inflight.Add(-int64(len(b)))
	ns := make([]Notification, len(b))
	for i, it := range b {
		ns[i] = it.n
	}
	var triedGen uint64
	tried := false
	for {
		p.mu.Lock()
		e, attached := p.deliverers[client]
		if !attached || (tried && e.gen == triedGen) {
			// No sink, or the sink we already tried is still the current
			// one: park. A sink installed by a *newer* Attach loops back
			// and is tried instead.
			mb := p.mailboxes[client]
			if mb != nil {
				for _, it := range b {
					mb.park(it.seq)
				}
			}
			if tried {
				// The sink is still attached but failing: schedule an
				// automatic re-drain instead of waiting for a reconnect.
				p.retryAt[client] = time.Now().Add(p.cfg.RetryInterval)
			}
			p.mu.Unlock()
			p.m.Parked.Add(int64(len(b)))
			if tried {
				p.m.Retried.Add(int64(len(b)))
				p.cfg.Log.Warn("delivery failed, batch parked for retry",
					logging.String("client", client), logging.Int("batch", int64(len(b))))
			}
			return
		}
		d, gen := e.fn, e.gen
		p.mu.Unlock()
		start := time.Now()
		err := d(client, ns)
		sendDur := time.Since(start)
		p.m.FlushLatency.Observe(sendDur)
		p.m.BatchSizes.Observe(float64(len(b)))
		p.m.Batches.Inc()
		if err == nil {
			p.ackItems(client, b)
			p.m.Delivered.Add(int64(len(b)))
			now := time.Now()
			for _, it := range b {
				c := classOf(it.n)
				p.m.DeliveredByClass[c].Inc()
				if !it.n.At.IsZero() {
					// End-to-end delivery latency per class (enqueue → sink),
					// including any parked or deferred dwell time. A sampled
					// notification leaves its trace ID as the bucket's
					// OpenMetrics exemplar, linking the histogram to the span
					// tree that landed there.
					if it.n.Trace.Sampled() {
						p.m.ClassLatency[c].ObserveExemplar(now.Sub(it.n.At), it.n.Trace.TraceID())
					} else {
						p.m.ClassLatency[c].Observe(now.Sub(it.n.At))
					}
				}
				if it.n.Trace.Sampled() {
					p.recordFlushSpans(it, c, start, sendDur, now, len(b))
				}
			}
			return
		}
		tried, triedGen = true, gen
	}
}

// recordFlushSpans emits one traced item's flush and notify spans after a
// successful batch delivery. The flush span runs dequeue → delivered
// (batch dwell plus the send); the nested notify span is the sink call
// itself. Items whose queue-wait span was lost to a spill round trip (or
// that were drained from a mailbox) chain directly under n.Trace with the
// batch send as their flush window.
func (p *Pipeline) recordFlushSpans(it item, c qos.Class, sendStart time.Time, sendDur time.Duration, end time.Time, batchLen int) {
	parent := it.n.Trace
	if qctx := it.qw.Context(); qctx.Sampled() {
		parent = qctx
	}
	flushStart := it.deq
	if flushStart.IsZero() {
		flushStart = sendStart
	}
	fctx := p.cfg.Tracer.Record(parent, trace.StageFlush, flushStart, end.Sub(flushStart), c.String(),
		trace.Attr{Key: "batch", Value: fmt.Sprint(batchLen)})
	p.cfg.Tracer.Record(fctx, trace.StageNotify, sendStart, sendDur, c.String())
}

// ackItems removes delivered items from the client's mailbox.
func (p *Pipeline) ackItems(client string, b []item) {
	p.mu.Lock()
	mb := p.mailboxes[client]
	p.mu.Unlock()
	if mb == nil {
		return
	}
	seqs := make([]uint64, len(b))
	for i, it := range b {
		seqs[i] = it.seq
	}
	acked := mb.ack(seqs)
	if obs := p.observer(); obs != nil && len(acked) > 0 {
		ops := make([]MailboxOp, len(acked))
		for i, seq := range acked {
			ops[i] = MailboxOp{Client: client, Seq: seq, Ack: true}
		}
		obs(ops)
	}
}

// parkItems returns items to their mailboxes as parked (deliverable on the
// next attach).
func (p *Pipeline) parkItems(b []item) {
	for _, it := range b {
		p.mu.Lock()
		mb := p.mailboxes[it.n.Client]
		p.mu.Unlock()
		if mb != nil {
			mb.park(it.seq)
		}
	}
}
