package delivery

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/qos"
)

func testContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 10*time.Second)
}

func qosNotif(client string, class qos.Class, i int) Notification {
	ev := event.New(fmt.Sprintf("ev-%s-%d-%d", client, class, i), event.TypeDocumentsChanged,
		event.QName{Host: "H", Collection: "C"}, 1, nil, time.Now())
	return Notification{Client: client, ProfileID: "p", Event: ev, Class: class, At: time.Now()}
}

// TestWFQRealtimeOvertakesBulk verifies the scheduling point of the
// per-class queues: realtime enqueued AFTER a bulk backlog is still serviced
// first once the worker frees up.
func TestWFQRealtimeOvertakesBulk(t *testing.T) {
	p, err := NewPipeline(Config{
		Shards:        1,
		QueueDepth:    256,
		BatchSize:     1,                // flush per item: delivery order == dequeue order
		FlushInterval: 10 * time.Second, // keep the ticker out of the ordering
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var mu sync.Mutex
	var order []qos.Class
	record := func(_ string, batch []Notification) error {
		mu.Lock()
		for _, n := range batch {
			order = append(order, n.Class)
		}
		mu.Unlock()
		return nil
	}

	// Gate the single worker inside a delivery so the backlog builds up in
	// the class queues, not in batches.
	entered := make(chan struct{})
	release := make(chan struct{})
	p.Attach("gate", func(_ string, _ []Notification) error {
		close(entered)
		<-release
		return nil
	})
	p.Attach("b", record)
	p.Attach("r", record)
	if err := p.Enqueue(qosNotif("gate", qos.ClassNormal, 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the gate item")
	}
	const bulk, rt = 20, 5
	for i := 0; i < bulk; i++ {
		if err := p.Enqueue(qosNotif("b", qos.ClassBulk, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rt; i++ {
		if err := p.Enqueue(qosNotif("r", qos.ClassRealtime, i)); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == bulk+rt {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", n, bulk+rt)
		}
		time.Sleep(time.Millisecond)
	}
	// All realtime items fit inside one credit cycle (5 < weight 8), so
	// every one of them must be delivered before every bulk item, despite
	// being enqueued after the whole bulk backlog.
	mu.Lock()
	defer mu.Unlock()
	firstBulk, lastRT := -1, -1
	for i, c := range order {
		if c == qos.ClassBulk && firstBulk < 0 {
			firstBulk = i
		}
		if c == qos.ClassRealtime {
			lastRT = i
		}
	}
	if firstBulk < lastRT {
		t.Errorf("bulk delivered at %d before the last realtime at %d: order %v", firstBulk, lastRT, order)
	}
	m := p.Metrics().Snapshot()
	if m.Classes[qos.ClassRealtime].Delivered != rt || m.Classes[qos.ClassBulk].Delivered != bulk {
		t.Errorf("per-class delivered = %+v", m.Classes)
	}
	if m.Classes[qos.ClassRealtime].P99 <= 0 {
		t.Error("realtime latency histogram empty")
	}
}

// TestBulkNotStarvedUnderRealtimeFlood floods realtime while trickling bulk
// and asserts bulk still drains: the WFQ weight guarantees service.
func TestBulkNotStarvedUnderRealtimeFlood(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 4096, BatchSize: 8, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var delivered sync.Map
	sink := func(client string, batch []Notification) error {
		v, _ := delivered.LoadOrStore(client, new(int))
		*(v.(*int)) += len(batch)
		return nil
	}
	p.Attach("rt", sink)
	p.Attach("blk", sink)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := p.Enqueue(qosNotif("rt", qos.ClassRealtime, i)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := p.Enqueue(qosNotif("blk", qos.ClassBulk, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx, cancel := testContext(t)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"rt": n, "blk": n / 10}
	for client, w := range want {
		v, ok := delivered.Load(client)
		if !ok || *(v.(*int)) != w {
			t.Errorf("%s delivered %v, want %d", client, v, w)
		}
	}
}

func TestDeferParksThenRedelivers(t *testing.T) {
	p, err := NewPipeline(Config{
		Shards:        1,
		FlushInterval: 5 * time.Millisecond,
		RetryInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got := make(chan Notification, 1)
	p.Attach("u", func(_ string, batch []Notification) error {
		for _, n := range batch {
			got <- n
		}
		return nil
	})
	if err := p.Defer(qosNotif("u", qos.ClassNormal, 0)); err != nil {
		t.Fatal(err)
	}
	if pending := p.Pending("u"); pending != 1 {
		t.Fatalf("pending = %d immediately after Defer, want 1 (not queued)", pending)
	}
	if d := p.Metrics().Deferred.Value(); d != 1 {
		t.Errorf("Deferred counter = %d", d)
	}
	// The retry loop redelivers after RetryInterval without any re-attach.
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("deferred notification never redelivered")
	}
	if pending := p.Pending("u"); pending != 0 {
		t.Errorf("pending = %d after redelivery", pending)
	}
}

func TestDeferDrainsOnAttach(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, FlushInterval: 5 * time.Millisecond, RetryInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// No sink attached: Defer parks silently.
	if err := p.Defer(qosNotif("u", qos.ClassNormal, 0)); err != nil {
		t.Fatal(err)
	}
	got := make(chan Notification, 1)
	p.Attach("u", func(_ string, batch []Notification) error {
		for _, n := range batch {
			got <- n
		}
		return nil
	})
	select {
	case n := <-got:
		if n.Class != qos.ClassNormal {
			t.Errorf("class = %v", n.Class)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("attach did not drain the deferred notification")
	}
}

// TestWALClassRoundTrip restarts a durable pipeline and checks the QoS
// class of a parked notification survives recovery.
func TestWALClassRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPipeline(Config{Shards: 1, Dir: dir, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// No sink: the notification parks durably.
	if err := p.Enqueue(qosNotif("u", qos.ClassBulk, 0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := testContext(t)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := NewPipeline(Config{Shards: 1, Dir: dir, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	got := make(chan Notification, 1)
	p2.Attach("u", func(_ string, batch []Notification) error {
		for _, n := range batch {
			got <- n
		}
		return nil
	})
	select {
	case n := <-got:
		if n.Class != qos.ClassBulk {
			t.Errorf("recovered class = %v, want bulk", n.Class)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recovered notification not delivered")
	}
}

// TestSpilledRealtimeNotPinnedByBulk is the regression test for per-class
// spills: spilled realtime overflow must re-ingest as soon as the realtime
// queue idles, even while a large bulk backlog is still being serviced —
// with a single shared spill FIFO, the realtime items would sit on disk
// behind the bulk ones until every queue went empty.
func TestSpilledRealtimeNotPinnedByBulk(t *testing.T) {
	p, err := NewPipeline(Config{
		Shards:        1,
		QueueDepth:    4,
		Overflow:      SpillToDisk,
		Dir:           t.TempDir(),
		BatchSize:     1,                // delivery order == dequeue order
		FlushInterval: 10 * time.Second, // keep the ticker out of the ordering
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var mu sync.Mutex
	type delivered struct {
		class qos.Class
		id    string
	}
	var order []delivered
	record := func(_ string, batch []Notification) error {
		mu.Lock()
		for _, n := range batch {
			order = append(order, delivered{class: n.Class, id: n.Event.ID})
		}
		mu.Unlock()
		return nil
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	p.Attach("gate", func(_ string, _ []Notification) error {
		close(entered)
		<-release
		return nil
	})
	p.Attach("b", record)
	p.Attach("r", record)
	if err := p.Enqueue(qosNotif("gate", qos.ClassNormal, 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the gate item")
	}
	// Bulk first (fills its queue of 4 and spills 36), then realtime
	// (fills its queue of 4 and spills 8).
	const bulk, rt = 40, 12
	for i := 0; i < bulk; i++ {
		if err := p.Enqueue(qosNotif("b", qos.ClassBulk, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rt; i++ {
		if err := p.Enqueue(qosNotif("r", qos.ClassRealtime, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Metrics().Spilled.Value(); got == 0 {
		t.Fatal("nothing spilled — the scenario needs overflow on disk")
	}
	close(release)
	ctx, cancel := testContext(t)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != bulk+rt {
		t.Fatalf("delivered %d of %d", len(order), bulk+rt)
	}
	lastRT := -1
	var rtSeen, bulkSeen []string
	for i, d := range order {
		if d.class == qos.ClassRealtime {
			lastRT = i
			rtSeen = append(rtSeen, d.id)
		} else {
			bulkSeen = append(bulkSeen, d.id)
		}
	}
	// All realtime (queued + spilled) must finish well before the bulk
	// backlog does; with the shared-FIFO design the spilled realtime came
	// out dead last.
	if lastRT > (bulk+rt)-8 {
		t.Errorf("last realtime delivered at position %d of %d — spilled realtime was pinned behind bulk", lastRT, bulk+rt)
	}
	// Per-class FIFO survives the queue→spill→re-ingest path.
	for i, id := range rtSeen {
		if want := fmt.Sprintf("ev-r-%d-%d", qos.ClassRealtime, i); id != want {
			t.Fatalf("realtime position %d = %s, want %s", i, id, want)
		}
	}
	for i, id := range bulkSeen {
		if want := fmt.Sprintf("ev-b-%d-%d", qos.ClassBulk, i); id != want {
			t.Fatalf("bulk position %d = %s, want %s", i, id, want)
		}
	}
}
