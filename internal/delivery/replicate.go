package delivery

// Replication support: the pipeline exposes its logical mailbox mutations
// (appends, acks) to an observer and accepts the mirrored stream on the
// standby side, where applied entries rest parked until the standby is
// promoted and their clients re-attach. internal/replica wires the two ends
// together over the transport.

// MailboxOp is one logical mailbox mutation: an append of a new pending
// notification, or an ack removing one (delivered or evicted by the cap).
type MailboxOp struct {
	// Client owns the mailbox.
	Client string
	// Seq is the mailbox sequence of the affected entry.
	Seq uint64
	// Ack marks a removal; false is an append.
	Ack bool
	// N is the appended notification (zero value on acks).
	N Notification
}

// SetObserver installs fn to be called with every batch of logical mailbox
// mutations, outside mailbox locks: an enqueue reports its append (plus any
// cap evictions) before the item is queued for delivery, a flush reports
// its acks after the mailbox was updated. Replace or clear (nil) at any
// time; only mutations after the call are observed — pair SetObserver with
// ExportMailboxes for a consistent starting point.
func (p *Pipeline) SetObserver(fn func(ops []MailboxOp)) {
	p.mu.Lock()
	p.obs = fn
	p.mu.Unlock()
}

func (p *Pipeline) observer() func([]MailboxOp) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.obs
}

// MailboxEntry is one undelivered notification in a mailbox export.
type MailboxEntry struct {
	Seq uint64
	N   Notification
}

// MailboxSnapshot is the full pending set of one user's mailbox.
type MailboxSnapshot struct {
	Client  string
	NextSeq uint64
	Entries []MailboxEntry
}

// ExportMailboxes snapshots every mailbox's pending set (parked and
// inflight alike: inflight entries are undelivered until acked), for
// replication snapshots. Users with empty mailboxes are included so the
// standby learns their sequence counters.
func (p *Pipeline) ExportMailboxes() []MailboxSnapshot {
	p.mu.Lock()
	boxes := make(map[string]*mailbox, len(p.mailboxes))
	for user, mb := range p.mailboxes {
		boxes[user] = mb
	}
	p.mu.Unlock()
	out := make([]MailboxSnapshot, 0, len(boxes))
	for user, mb := range boxes {
		next, entries := mb.export()
		snap := MailboxSnapshot{Client: user, NextSeq: next}
		for _, e := range entries {
			snap.Entries = append(snap.Entries, MailboxEntry{Seq: e.seq, N: e.n})
		}
		out = append(out, snap)
	}
	return out
}

// ApplyAppend installs one replicated pending notification with the
// primary's mailbox sequence. The entry is parked — nothing is queued for
// delivery — until the owning client attaches (after promotion).
func (p *Pipeline) ApplyAppend(client string, seq uint64, n Notification) error {
	mb, err := p.mailboxOf(client)
	if err != nil {
		return err
	}
	return mb.applyAppend(seq, n)
}

// ApplyAck removes a replicated-delivered (or replicated-evicted) entry.
// Unknown sequences are ignored.
func (p *Pipeline) ApplyAck(client string, seq uint64) {
	p.mu.Lock()
	mb := p.mailboxes[client]
	p.mu.Unlock()
	if mb != nil {
		mb.applyAck(seq)
	}
}

// ApplyMailboxSnapshot replaces the entire mailbox population with the
// snapshot: mailboxes absent from it are emptied, listed ones take exactly
// the snapshot's pending set (parked). Durable mailboxes rewrite their WALs
// to match.
func (p *Pipeline) ApplyMailboxSnapshot(snaps []MailboxSnapshot) error {
	inSnap := make(map[string]bool, len(snaps))
	for _, s := range snaps {
		inSnap[s.Client] = true
	}
	p.mu.Lock()
	var stale []*mailbox
	for user, mb := range p.mailboxes {
		if !inSnap[user] {
			stale = append(stale, mb)
		}
	}
	p.mu.Unlock()
	var firstErr error
	for _, mb := range stale {
		if err := mb.replaceAll(0, nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, s := range snaps {
		mb, err := p.mailboxOf(s.Client)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		entries := make([]entry, 0, len(s.Entries))
		for _, e := range s.Entries {
			entries = append(entries, entry{seq: e.Seq, n: e.N})
		}
		if err := mb.replaceAll(s.NextSeq, entries); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MarshalNotification renders a notification in the mailbox WAL's XML form;
// the replication stream reuses it so both persisted and replicated copies
// share one format.
func MarshalNotification(n Notification) ([]byte, error) {
	return marshalNotification(n)
}

// UnmarshalNotification inverts MarshalNotification.
func UnmarshalNotification(raw []byte) (Notification, error) {
	return unmarshalNotification(raw)
}
