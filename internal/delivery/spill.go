package delivery

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/gsalert/gsalert/internal/qos"
)

// spillQueue is a disk-backed FIFO absorbing shard-queue overflow under the
// SpillToDisk policy. Items are appended at the tail and read back from a
// moving head offset; once the head catches the tail the file is truncated
// so the spill never grows without bound across bursts.
//
// Records reuse the mailbox WAL payload encoding prefixed with the mailbox
// sequence:
//
//	seq(u64) len(u32) payload
type spillQueue struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	readOff int64
	size    int64
	count   int
}

// newSpillQueue opens the spill FIFO of one (shard, class) pair. Spills are
// per class so re-ingesting one class's overflow never depends on another
// class's queue going idle — a bulk flood must not pin spilled realtime
// items on disk.
func newSpillQueue(dir string, shard int, class qos.Class) (*spillQueue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("delivery: spill dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("shard-%d-%s.spill", shard, class))
	// Spill contents are transient overflow; a leftover file from a crash
	// holds items that are also in the mailbox WALs, so start clean.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("delivery: spill open: %w", err)
	}
	return &spillQueue{f: f, path: path}, nil
}

// push appends one item at the tail.
func (s *spillQueue) push(it item) error {
	payload, err := marshalNotification(it.n)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+4, 8+4+len(payload))
	binary.BigEndian.PutUint64(buf[:8], it.seq)
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	buf = append(buf, payload...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		return fmt.Errorf("delivery: spill write: %w", err)
	}
	s.size += int64(len(buf))
	s.count++
	return nil
}

// pop reads the oldest spilled item; ok is false when the queue is empty.
// A corrupt or unreadable record poisons everything behind it (records are
// not self-synchronising), so on error the spill is reset and the number of
// discarded queue copies is returned — the caller settles the inflight
// accounting. Durable deployments still hold those notifications in the
// mailbox WALs, where a restart recovers them.
func (s *spillQueue) pop() (it item, ok bool, dropped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return item{}, false, 0, nil
	}
	fail := func(cause error) (item, bool, int, error) {
		n := s.count
		s.resetLocked()
		return item{}, false, n, cause
	}
	var head [12]byte
	if _, err := s.f.ReadAt(head[:], s.readOff); err != nil {
		return fail(fmt.Errorf("delivery: spill read: %w", err))
	}
	seq := binary.BigEndian.Uint64(head[:8])
	size := binary.BigEndian.Uint32(head[8:12])
	if size > maxWALRecord {
		return fail(fmt.Errorf("delivery: spill: record size %d exceeds limit", size))
	}
	payload := make([]byte, size)
	if _, err := s.f.ReadAt(payload, s.readOff+12); err != nil {
		return fail(fmt.Errorf("delivery: spill read: %w", err))
	}
	n, err := unmarshalNotification(payload)
	if err != nil {
		return fail(err)
	}
	s.readOff += 12 + int64(size)
	s.count--
	if s.count == 0 {
		s.resetLocked()
	}
	return item{n: n, seq: seq}, true, 0, nil
}

// resetLocked reclaims the file (or, if truncation fails, at least skips
// the dead region) so the queue never wedges on the same bytes twice.
func (s *spillQueue) resetLocked() {
	s.count = 0
	if err := s.f.Truncate(0); err == nil {
		s.readOff, s.size = 0, 0
		_, _ = s.f.Seek(0, io.SeekStart)
		return
	}
	s.readOff = s.size
}

// len reports spilled items not yet re-ingested.
func (s *spillQueue) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *spillQueue) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	_ = os.Remove(s.path)
	return err
}
