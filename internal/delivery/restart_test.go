package delivery

import (
	"fmt"
	"testing"
	"time"
)

// TestSpillRestartDrainsFIFO fills a client's mailbox under spill-to-disk
// backpressure, shuts the pipeline down mid-burst, restarts it over the
// same durable directory, and asserts that every alert — including the
// ones that were sitting in the shard spill file at shutdown — drains in
// FIFO order once the client reconnects. Close parks spilled items back
// into the durable mailboxes, so a restart recovers them from the WAL;
// nothing is lost and nothing is reordered.
func TestSpillRestartDrainsFIFO(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 1, QueueDepth: 2, BatchSize: 4,
		FlushInterval: 5 * time.Millisecond,
		Overflow:      SpillToDisk, Dir: dir,
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the worker inside a delivery so the shard queue fills and the
	// overflow spills to disk; the pinned batch itself fails, so nothing
	// is delivered before the shutdown.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	p.Attach("ivy", func(string, []Notification) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return fmt.Errorf("transport gone")
	})
	const total = 60
	if err := p.Enqueue(testNotification("ivy", 0)); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 1; i < total; i++ {
		if err := p.Enqueue(testNotification("ivy", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Metrics().Snapshot(); s.Spilled == 0 {
		t.Fatal("nothing spilled — the scenario did not exercise the spill path")
	}
	close(release)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: the WAL recovery must surface every
	// undelivered alert as parked.
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Metrics().Recovered.Value(); got != total {
		t.Fatalf("recovered = %d, want %d", got, total)
	}
	if got := p2.Pending("ivy"); got != total {
		t.Fatalf("parked after restart = %d, want %d", got, total)
	}

	// Reconnect: the attach drains the mailbox through the pipeline.
	sink := &recordingSink{}
	p2.Attach("ivy", sink.deliver)
	drain(t, p2)
	if sink.len() != total {
		t.Fatalf("delivered after restart = %d, want %d", sink.len(), total)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for i, n := range sink.got {
		if n.DocIDs[0] != fmt.Sprintf("d%d", i) {
			t.Fatalf("out of FIFO order at %d: got %v", i, n.DocIDs)
		}
	}
}
