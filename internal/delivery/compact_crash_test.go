package delivery

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// Compaction rewrites a mailbox WAL in two steps: write the snapshot to
// <wal>.tmp (fsynced), then rename it over the log. These tests kill the
// process at each boundary and assert recoverMailboxes restores exactly the
// pre-compaction pending set — no duplicated and no lost sequences.

// compactionFixture builds a durable mailbox with 10 appends and 4 acks,
// returning the live (pending) sequences.
func compactionFixture(t *testing.T, dir string) (live []uint64) {
	t.Helper()
	mb, err := newMailbox(dir, "u", 100, 1<<30) // threshold high: no auto compaction
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 10; i++ {
		seq, _, err := mb.add(testNotification("u", i))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	mb.ack(seqs[:4])

	// Crash between the WAL rewrite and the rename: the snapshot exists as
	// <wal>.tmp, the append-log is still the authoritative file. Driving
	// the real snapshot writer (compaction's first phase) keeps the test
	// honest about the on-disk bytes.
	mb.mu.Lock()
	err = mb.writeSnapshotLocked(mb.walPath + ".tmp")
	mb.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// The crash: the WAL handle dies with the process; no close(), which
	// would compact cleanly.
	if err := mb.wal.Close(); err != nil {
		t.Fatal(err)
	}
	mb.wal = nil
	return seqs[4:]
}

func pendingSeqs(mb *mailbox) []uint64 {
	_, entries := mb.export()
	out := make([]uint64, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameSeqs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecoverAfterCrashBetweenRewriteAndRename(t *testing.T) {
	dir := t.TempDir()
	live := compactionFixture(t, dir)

	boxes, err := recoverMailboxes(dir, 100, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	mb := boxes["u"]
	if mb == nil {
		t.Fatalf("mailbox not recovered; boxes = %v", boxes)
	}
	defer mb.close()
	if got := pendingSeqs(mb); !sameSeqs(got, live) {
		t.Errorf("recovered sequences = %v, want the pre-compaction live set %v (no duplicates, no losses)", got, live)
	}
	// The orphaned .tmp must not have been recovered as a second mailbox.
	if len(boxes) != 1 {
		users := make([]string, 0, len(boxes))
		for u := range boxes {
			users = append(users, u)
		}
		t.Errorf("recovered %d mailboxes (%v), want 1 — the .tmp leaked in", len(boxes), users)
	}
	// New appends continue above the recovered maximum: no sequence reuse.
	seq, _, err := mb.add(testNotification("u", 99))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= live[len(live)-1] {
		t.Errorf("post-recovery seq %d reuses a pre-crash sequence (max live %d)", seq, live[len(live)-1])
	}
}

func TestRecoverAfterCrashJustAfterRename(t *testing.T) {
	dir := t.TempDir()
	live := compactionFixture(t, dir)

	// The other side of the boundary: the rename landed, the process died
	// before the in-memory counters reset. On disk only the snapshot
	// remains.
	walPath := filepath.Join(dir, mailboxFileName("u"))
	if err := os.Rename(walPath+".tmp", walPath); err != nil {
		t.Fatal(err)
	}
	boxes, err := recoverMailboxes(dir, 100, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	mb := boxes["u"]
	if mb == nil {
		t.Fatal("mailbox not recovered")
	}
	defer mb.close()
	if got := pendingSeqs(mb); !sameSeqs(got, live) {
		t.Errorf("recovered sequences = %v, want %v", got, live)
	}
}

// TestCompactionSurvivesRepeatedCrashCycles drives several
// fill→ack→half-compact→recover cycles and asserts the live set never
// drifts: recovery must be idempotent against a stale .tmp from any
// earlier cycle.
func TestCompactionSurvivesRepeatedCrashCycles(t *testing.T) {
	dir := t.TempDir()
	mb, err := newMailbox(dir, "u", 100, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var live []uint64
	for cycle := 0; cycle < 3; cycle++ {
		var added []uint64
		for i := 0; i < 4; i++ {
			seq, _, err := mb.add(testNotification("u", cycle*10+i))
			if err != nil {
				t.Fatal(err)
			}
			added = append(added, seq)
		}
		mb.ack(added[:1])
		live = append(live, added[1:]...)

		mb.mu.Lock()
		err = mb.writeSnapshotLocked(mb.walPath + ".tmp")
		mb.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		if mb.wal != nil {
			mb.wal.Close()
			mb.wal = nil
		}
		boxes, err := recoverMailboxes(dir, 100, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		mb = boxes["u"]
		if mb == nil {
			t.Fatal("mailbox lost in recovery")
		}
		if got := pendingSeqs(mb); !sameSeqs(got, live) {
			t.Fatalf("cycle %d: recovered %v, want %v", cycle, got, live)
		}
	}
	mb.close()
}
