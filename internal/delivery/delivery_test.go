package delivery

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/event"
)

func testNotification(client string, i int) Notification {
	ev := event.New(fmt.Sprintf("ev-%s-%d", client, i), event.TypeCollectionRebuilt,
		event.QName{Host: "Hamilton", Collection: "D"}, i,
		[]event.DocRef{{ID: fmt.Sprintf("d%d", i)}}, time.Unix(1117584000, 0))
	return Notification{
		Client:    client,
		ProfileID: fmt.Sprintf("p-%s", client),
		Event:     ev,
		DocIDs:    []string{fmt.Sprintf("d%d", i)},
		At:        time.Unix(1117584000, 0),
	}
}

// recordingSink is a thread-safe Deliverer capturing batches.
type recordingSink struct {
	mu      sync.Mutex
	got     []Notification
	batches int
	fail    atomic.Bool
}

func (r *recordingSink) deliver(_ string, batch []Notification) error {
	if r.fail.Load() {
		return errors.New("sink unavailable")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, batch...)
	r.batches++
	return nil
}

func (r *recordingSink) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func (r *recordingSink) batchCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batches
}

func drain(t *testing.T, p *Pipeline) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestEnqueueDeliverRoundTrip(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 2, QueueDepth: 16, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	p.Attach("alice", sink.deliver)
	for i := 0; i < 10; i++ {
		if err := p.Enqueue(testNotification("alice", i)); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, p)
	if sink.len() != 10 {
		t.Fatalf("delivered = %d, want 10", sink.len())
	}
	// Per-client FIFO ordering survives sharding (one client = one shard).
	sink.mu.Lock()
	for i, n := range sink.got {
		if n.DocIDs[0] != fmt.Sprintf("d%d", i) {
			t.Errorf("out of order at %d: %v", i, n.DocIDs)
		}
	}
	sink.mu.Unlock()
	if got := p.Metrics().Snapshot(); got.Delivered != 10 || got.Enqueued != 10 {
		t.Errorf("metrics = %+v", got)
	}
	if p.Pending("alice") != 0 {
		t.Errorf("pending = %d after delivery", p.Pending("alice"))
	}
}

func TestOfflineParkThenAttachDrains(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 8, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 5; i++ {
		if err := p.Enqueue(testNotification("bob", i)); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, p)
	if got := p.Pending("bob"); got != 5 {
		t.Fatalf("parked = %d, want 5", got)
	}
	if s := p.Metrics().Snapshot(); s.Parked != 5 || s.Delivered != 0 {
		t.Fatalf("metrics = %+v", s)
	}
	// Reconnect: attach drains the mailbox in order.
	sink := &recordingSink{}
	p.Attach("bob", sink.deliver)
	drain(t, p)
	if sink.len() != 5 {
		t.Fatalf("drained = %d, want 5", sink.len())
	}
	if got := p.Pending("bob"); got != 0 {
		t.Errorf("parked after drain = %d", got)
	}
}

func TestFailedDeliveryParksForRetry(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 8, BatchSize: 8, RetryInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	sink.fail.Store(true)
	p.Attach("carol", sink.deliver)
	for i := 0; i < 3; i++ {
		if err := p.Enqueue(testNotification("carol", i)); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, p)
	if got := p.Pending("carol"); got != 3 {
		t.Fatalf("parked after failure = %d, want 3", got)
	}
	if s := p.Metrics().Snapshot(); s.Retried != 3 {
		t.Fatalf("retried = %d", s.Retried)
	}
	// The sink heals WITHOUT re-attaching: the retry loop must redeliver
	// on its own — a transient transport error is not a disconnect.
	sink.fail.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for sink.len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.len() != 3 {
		t.Fatalf("auto-redelivered = %d, want 3 (retry loop inactive)", sink.len())
	}
	if got := p.Pending("carol"); got != 0 {
		t.Errorf("pending after auto-retry = %d", got)
	}
}

func TestBatchFlushOnSize(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 64, BatchSize: 4, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	p.Attach("dave", sink.deliver)
	// Exactly one full batch: flushes without any ticker help.
	for i := 0; i < 4; i++ {
		if err := p.Enqueue(testNotification("dave", i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.len() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.len() != 4 {
		t.Fatalf("size-triggered flush delivered %d, want 4", sink.len())
	}
	if sink.batchCount() != 1 {
		t.Errorf("batches = %d, want 1", sink.batchCount())
	}
}

func TestBatchFlushOnInterval(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 64, BatchSize: 1000, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	p.Attach("erin", sink.deliver)
	// Far below the size trigger: only the interval can flush these.
	for i := 0; i < 3; i++ {
		if err := p.Enqueue(testNotification("erin", i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.len() != 3 {
		t.Fatalf("interval-triggered flush delivered %d, want 3", sink.len())
	}
}

func TestOverflowBlockBackpressure(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 2, BatchSize: 1000, FlushInterval: 10 * time.Millisecond, Overflow: Block})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	p.Attach("frank", sink.deliver)
	// With depth 2 the producer must be throttled, yet every notification
	// eventually lands: blocking means no loss.
	for i := 0; i < 50; i++ {
		if err := p.Enqueue(testNotification("frank", i)); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, p)
	if sink.len() != 50 {
		t.Fatalf("delivered = %d, want 50", sink.len())
	}
	if s := p.Metrics().Snapshot(); s.Displaced != 0 || s.Dropped != 0 {
		t.Errorf("block policy displaced/dropped: %+v", s)
	}
}

func TestOverflowDropOldestDisplacesToMailbox(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 1, BatchSize: 1, FlushInterval: time.Hour, Overflow: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// A sink that blocks its first delivery pins the worker, so the depth-1
	// queue saturates and later enqueues must displace the oldest.
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	var delivered atomic.Int64
	p.Attach("grace", func(_ string, batch []Notification) error {
		once.Do(func() { close(entered) })
		<-release
		delivered.Add(int64(len(batch)))
		return nil
	})
	if err := p.Enqueue(testNotification("grace", 0)); err != nil {
		t.Fatal(err)
	}
	<-entered // worker is now blocked inside the sink
	for i := 1; i < 10; i++ {
		if err := p.Enqueue(testNotification("grace", i)); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Metrics().Snapshot()
	if s.Displaced != 8 {
		t.Fatalf("displaced = %d, want 8", s.Displaced)
	}
	if s.Dropped != 0 {
		t.Errorf("dropped = %d; displacement must not lose alerts", s.Dropped)
	}
	close(release)
	drain(t, p)
	// Displaced alerts are parked, not lost: delivered + parked covers all.
	if got := int(delivered.Load()) + p.Pending("grace"); got != 10 {
		t.Fatalf("delivered+parked = %d, want 10", got)
	}
}

func TestOverflowSpillToDisk(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPipeline(Config{
		Shards: 1, QueueDepth: 2, BatchSize: 4,
		FlushInterval: 5 * time.Millisecond,
		Overflow:      SpillToDisk, Dir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	p.Attach("heidi", func(client string, batch []Notification) error {
		once.Do(func() { close(entered) })
		<-release
		return sink.deliver(client, batch)
	})
	if err := p.Enqueue(testNotification("heidi", 0)); err != nil {
		t.Fatal(err)
	}
	<-entered // worker pinned: the queue will fill and overflow to disk
	for i := 1; i < 100; i++ {
		if err := p.Enqueue(testNotification("heidi", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := p.Metrics().Snapshot(); s.Spilled < 90 {
		t.Fatalf("spilled = %d, want >= 90 with a pinned worker and depth 2", s.Spilled)
	}
	close(release)
	drain(t, p)
	if sink.len() != 100 {
		t.Fatalf("delivered = %d, want 100", sink.len())
	}
	// FIFO order is preserved through the spill for one client.
	sink.mu.Lock()
	for i, n := range sink.got {
		if n.DocIDs[0] != fmt.Sprintf("d%d", i) {
			t.Fatalf("out of order at %d: %v", i, n.DocIDs)
		}
	}
	sink.mu.Unlock()
}

func TestSpillRequiresDir(t *testing.T) {
	if _, err := NewPipeline(Config{Overflow: SpillToDisk}); err == nil {
		t.Fatal("SpillToDisk without Dir accepted")
	}
}

func TestMailboxCapEvictsOldest(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 64, MailboxCap: 3, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 8; i++ {
		if err := p.Enqueue(testNotification("ivan", i)); err != nil {
			t.Fatal(err)
		}
		drain(t, p) // park each before the next arrives
	}
	if got := p.Pending("ivan"); got != 3 {
		t.Fatalf("parked = %d, want cap 3", got)
	}
	if s := p.Metrics().Snapshot(); s.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", s.Dropped)
	}
	// The survivors are the newest three.
	sink := &recordingSink{}
	p.Attach("ivan", sink.deliver)
	drain(t, p)
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.got) != 3 || sink.got[0].DocIDs[0] != "d5" || sink.got[2].DocIDs[0] != "d7" {
		ids := []string{}
		for _, n := range sink.got {
			ids = append(ids, n.DocIDs[0])
		}
		t.Fatalf("survivors = %v, want [d5 d6 d7]", ids)
	}
}

func TestShardingPreservesPerClientOrder(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 8, QueueDepth: 64, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sinks := map[string]*recordingSink{}
	for c := 0; c < 20; c++ {
		client := fmt.Sprintf("user-%d", c)
		s := &recordingSink{}
		sinks[client] = s
		p.Attach(client, s.deliver)
	}
	for i := 0; i < 30; i++ {
		for c := 0; c < 20; c++ {
			if err := p.Enqueue(testNotification(fmt.Sprintf("user-%d", c), i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain(t, p)
	for client, s := range sinks {
		if s.len() != 30 {
			t.Fatalf("%s delivered = %d, want 30", client, s.len())
		}
		s.mu.Lock()
		for i, n := range s.got {
			if n.DocIDs[0] != fmt.Sprintf("d%d", i) {
				t.Fatalf("%s out of order at %d: %v", client, i, n.DocIDs)
			}
		}
		s.mu.Unlock()
	}
}

func TestDetachParksSubsequent(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1, QueueDepth: 16, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	p.Attach("judy", sink.deliver)
	if err := p.Enqueue(testNotification("judy", 0)); err != nil {
		t.Fatal(err)
	}
	drain(t, p)
	p.Detach("judy")
	if err := p.Enqueue(testNotification("judy", 1)); err != nil {
		t.Fatal(err)
	}
	drain(t, p)
	if sink.len() != 1 || p.Pending("judy") != 1 {
		t.Fatalf("delivered=%d parked=%d, want 1/1", sink.len(), p.Pending("judy"))
	}
}

func TestEnqueueAfterClose(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue(testNotification("k", 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentEnqueue(t *testing.T) {
	p, err := NewPipeline(Config{Shards: 4, QueueDepth: 128, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sink := &recordingSink{}
	var total atomic.Int64
	for c := 0; c < 8; c++ {
		p.Attach(fmt.Sprintf("c%d", c), sink.deliver)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := p.Enqueue(testNotification(fmt.Sprintf("c%d", g), i)); err == nil {
					total.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	drain(t, p)
	if int64(sink.len()) != total.Load() {
		t.Fatalf("delivered = %d, enqueued = %d", sink.len(), total.Load())
	}
}
