package delivery

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestMailboxWALCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mb, err := newMailbox(dir, "alice", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 10; i++ {
		seq, evicted, err := mb.add(testNotification("alice", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(evicted) != 0 {
			t.Fatalf("unexpected eviction at %d", i)
		}
		seqs = append(seqs, seq)
	}
	// Deliver the first four.
	mb.ack(seqs[:4])
	// Crash: no close, no compaction — reopen from the raw WAL.
	mb2, err := newMailbox(dir, "alice", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer mb2.close()
	if got := mb2.pendingCount(); got != 6 {
		t.Fatalf("recovered pending = %d, want 6", got)
	}
	// Recovered entries are parked, carry their payloads, and keep order.
	items := mb2.takePending()
	for i, it := range items {
		want := fmt.Sprintf("d%d", i+4)
		if it.n.DocIDs[0] != want {
			t.Errorf("recovered[%d] = %v, want %s", i, it.n.DocIDs, want)
		}
		if it.n.Event == nil || it.n.Event.Collection.String() != "Hamilton.D" {
			t.Errorf("recovered[%d] event = %+v", i, it.n.Event)
		}
		if it.n.ProfileID != "p-alice" {
			t.Errorf("recovered[%d] profile = %q", i, it.n.ProfileID)
		}
	}
	// Sequences continue past the recovered maximum: no reuse after crash.
	seq, _, err := mb2.add(testNotification("alice", 99))
	if err != nil {
		t.Fatal(err)
	}
	if seq <= seqs[len(seqs)-1] {
		t.Errorf("post-recovery seq %d not above %d", seq, seqs[len(seqs)-1])
	}
}

func TestMailboxWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	mb, err := newMailbox(dir, "bob", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := mb.add(testNotification("bob", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mb.wal.Close(); err != nil {
		t.Fatal(err)
	}
	mb.wal = nil
	// Simulate a crash mid-append: a record header with no payload.
	path := filepath.Join(dir, mailboxFileName("bob"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{recAppend, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mb2, err := newMailbox(dir, "bob", 100, 1000)
	if err != nil {
		t.Fatalf("torn tail broke recovery: %v", err)
	}
	defer mb2.close()
	if got := mb2.pendingCount(); got != 5 {
		t.Fatalf("recovered pending = %d, want 5 (torn record discarded)", got)
	}
}

// TestMailboxWALTornTailTruncatedBeforeAppend covers the double-crash
// scenario: a torn tail must be cut away on recovery so records appended
// afterwards remain readable by the NEXT recovery.
func TestMailboxWALTornTailTruncatedBeforeAppend(t *testing.T) {
	dir := t.TempDir()
	mb, err := newMailbox(dir, "dana", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := mb.add(testNotification("dana", i)); err != nil {
			t.Fatal(err)
		}
	}
	mb.wal.Close()
	mb.wal = nil
	path := filepath.Join(dir, mailboxFileName("dana"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{recAppend, 0, 0, 0, 0, 0}) // torn mid-header
	f.Close()

	// First recovery truncates the torn bytes; new appends go after the
	// last intact record.
	mb2, err := newMailbox(dir, "dana", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := mb2.pendingCount(); got != 3 {
		t.Fatalf("pending after torn recovery = %d, want 3", got)
	}
	for i := 3; i < 6; i++ {
		if _, _, err := mb2.add(testNotification("dana", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mb2.wal.Close(); err != nil {
		t.Fatal(err)
	}
	mb2.wal = nil

	// Second recovery must see ALL six — the post-crash appends are not
	// hidden behind garbage.
	mb3, err := newMailbox(dir, "dana", 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer mb3.close()
	if got := mb3.pendingCount(); got != 6 {
		t.Fatalf("pending after second recovery = %d, want 6 (appends lost behind torn tail)", got)
	}
}

func TestMailboxCompactionShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	mb, err := newMailbox(dir, "carol", 10000, 8) // compact after 8 dead records
	if err != nil {
		t.Fatal(err)
	}
	defer mb.close()
	var seqs []uint64
	for i := 0; i < 50; i++ {
		seq, _, err := mb.add(testNotification("carol", i))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	path := filepath.Join(dir, mailboxFileName("carol"))
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver 48 of 50: compaction triggers and rewrites only 2 live entries.
	mb.ack(seqs[:48])
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("WAL did not shrink: before=%d after=%d", before.Size(), after.Size())
	}
	// The compacted snapshot still recovers correctly.
	mb2, err := newMailbox(dir, "carol", 10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer mb2.close()
	if got := mb2.pendingCount(); got != 2 {
		t.Fatalf("pending after compaction+recovery = %d, want 2", got)
	}
	items := mb2.takePending()
	if items[0].n.DocIDs[0] != "d48" || items[1].n.DocIDs[0] != "d49" {
		t.Errorf("live entries = %v %v", items[0].n.DocIDs, items[1].n.DocIDs)
	}
}

func TestRecoverMailboxesScansDirectory(t *testing.T) {
	dir := t.TempDir()
	for _, user := range []string{"alice", "bob/with-slash", "carol space"} {
		mb, err := newMailbox(dir, user, 100, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, _, err := mb.add(testNotification(user, i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := mb.close(); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign file is skipped, not an error.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	boxes, err := recoverMailboxes(dir, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != 3 {
		t.Fatalf("recovered %d mailboxes, want 3", len(boxes))
	}
	for user, mb := range boxes {
		if got := mb.pendingCount(); got != 3 {
			t.Errorf("%s pending = %d, want 3", user, got)
		}
		mb.close()
	}
}

// TestPipelineDurableRestart is the end-to-end crash-recovery round-trip:
// notifications enqueued for an offline user survive a pipeline restart and
// drain to the user on reconnect.
func TestPipelineDurableRestart(t *testing.T) {
	dir := t.TempDir()
	p1, err := NewPipeline(Config{Shards: 2, Dir: dir, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := p1.Enqueue(testNotification("offline-user", i)); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, p1)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovered notifications are reported and parked.
	p2, err := NewPipeline(Config{Shards: 2, Dir: dir, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Metrics().Recovered.Value(); got != 7 {
		t.Fatalf("recovered = %d, want 7", got)
	}
	if got := p2.Pending("offline-user"); got != 7 {
		t.Fatalf("pending = %d, want 7", got)
	}
	sink := &recordingSink{}
	p2.Attach("offline-user", sink.deliver)
	drain(t, p2)
	if sink.len() != 7 {
		t.Fatalf("drained = %d, want 7", sink.len())
	}
	// Delivery acked durably: a third incarnation starts empty.
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	p3, err := NewPipeline(Config{Shards: 2, Dir: dir, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if got := p3.Pending("offline-user"); got != 0 {
		t.Fatalf("pending after delivered restart = %d, want 0", got)
	}
}

func TestNotificationSerialisationRoundTrip(t *testing.T) {
	n := testNotification("u", 3)
	raw, err := marshalNotification(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := unmarshalNotification(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Client != n.Client || back.ProfileID != n.ProfileID {
		t.Errorf("round trip: %+v", back)
	}
	if len(back.DocIDs) != 1 || back.DocIDs[0] != "d3" {
		t.Errorf("doc ids: %v", back.DocIDs)
	}
	if !back.At.Equal(n.At) {
		t.Errorf("at: %v != %v", back.At, n.At)
	}
	if back.Event == nil || back.Event.ID != n.Event.ID || back.Event.Type != n.Event.Type {
		t.Errorf("event: %+v", back.Event)
	}
	// Event-less notifications (pure doc matches) survive too.
	n2 := Notification{Client: "u", ProfileID: "p", At: time.Unix(1, 0)}
	raw2, err := marshalNotification(n2)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := unmarshalNotification(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Event != nil {
		t.Errorf("phantom event: %+v", back2.Event)
	}
}
