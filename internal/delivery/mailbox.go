package delivery

import (
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/trace"
)

// A mailbox holds one user's undelivered notifications. Entries move through
// three states: inflight (queued on a shard), parked (at rest, waiting for
// the client to attach) and gone (delivered or evicted). With a WAL the
// pending set survives restarts: every add appends an 'A' record, every
// delivery an 'K' (ack) record, and once enough of the log is dead it is
// compacted into a snapshot holding only the live entries.
//
// The WAL is a sequence of length-delimited binary records:
//
//	'A' seq(u64) len(u32) payload   — notification appended
//	'K' seq(u64)                    — notification delivered/evicted
//
// A torn trailing record (crash mid-write) is detected by length and
// silently discarded on recovery; everything before it is intact.

const (
	recAppend byte = 'A'
	recAck    byte = 'K'

	walSuffix               = ".wal"
	defaultCompactThreshold = 1024

	// maxWALRecord bounds one record's payload; a larger length prefix
	// means corruption, not a notification.
	maxWALRecord = 16 << 20
)

type entry struct {
	seq      uint64
	n        Notification
	inflight bool
}

type mailbox struct {
	mu      sync.Mutex
	user    string
	entries []entry // ordered by seq
	nextSeq uint64
	cap     int

	wal          *os.File // nil when memory-only
	walPath      string
	deadRecords  int // acked records since last compaction
	totalRecords int
	compactAt    int
}

// newMailbox opens (or creates) a mailbox. With dir == "" the mailbox is
// memory-only.
func newMailbox(dir, user string, capacity, compactAt int) (*mailbox, error) {
	mb := &mailbox{user: user, nextSeq: 1, cap: capacity, compactAt: compactAt}
	if dir == "" {
		return mb, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("delivery: mailbox dir: %w", err)
	}
	mb.walPath = filepath.Join(dir, mailboxFileName(user))
	if err := mb.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(mb.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("delivery: mailbox wal: %w", err)
	}
	mb.wal = f
	return mb, nil
}

// mailboxFileName escapes a user name into a safe file name.
func mailboxFileName(user string) string {
	return url.PathEscape(user) + walSuffix
}

// userFromFileName reverses mailboxFileName; ok is false for foreign files.
func userFromFileName(name string) (string, bool) {
	if !strings.HasSuffix(name, walSuffix) {
		return "", false
	}
	user, err := url.PathUnescape(strings.TrimSuffix(name, walSuffix))
	if err != nil {
		return "", false
	}
	return user, true
}

// recoverMailboxes opens every mailbox WAL found under dir. Recovered
// entries are parked: their users have not attached yet.
func recoverMailboxes(dir string, capacity, compactAt int) (map[string]*mailbox, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("delivery: mailbox dir: %w", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("delivery: mailbox dir: %w", err)
	}
	out := make(map[string]*mailbox)
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		user, ok := userFromFileName(de.Name())
		if !ok {
			continue
		}
		mb, err := newMailbox(dir, user, capacity, compactAt)
		if err != nil {
			return nil, err
		}
		out[user] = mb
	}
	return out, nil
}

// recover replays the WAL into the in-memory pending set. A torn tail
// (crash mid-append) is truncated away so the file ends at the last intact
// record — otherwise subsequent appends would land behind unreadable bytes
// and be silently lost on the next recovery.
func (mb *mailbox) recover() error {
	f, err := os.Open(mb.walPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("delivery: mailbox recover: %w", err)
	}
	defer f.Close()
	type rec struct {
		n     Notification
		alive bool
	}
	order := make([]uint64, 0, 64)
	live := make(map[uint64]*rec)
	cr := &countingReader{r: f}
	r := newWALReader(cr)
	goodOff := int64(0)
	torn := false
	for {
		kind, seq, n, err := r.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: keep everything read so far and cut
			// the file back to the last intact record below.
			torn = true
			break
		}
		goodOff = cr.n
		switch kind {
		case recAppend:
			if _, dup := live[seq]; !dup {
				order = append(order, seq)
			}
			live[seq] = &rec{n: n, alive: true}
		case recAck:
			if rc, ok := live[seq]; ok {
				rc.alive = false
			}
		}
		if seq >= mb.nextSeq {
			mb.nextSeq = seq + 1
		}
		mb.totalRecords++
	}
	for _, seq := range order {
		if rc := live[seq]; rc.alive {
			mb.entries = append(mb.entries, entry{seq: seq, n: rc.n})
		} else {
			mb.deadRecords++
		}
	}
	if torn {
		if err := os.Truncate(mb.walPath, goodOff); err != nil {
			return fmt.Errorf("delivery: mailbox truncate torn tail: %w", err)
		}
	}
	return nil
}

// countingReader tracks bytes consumed so recovery knows where the last
// intact record ends.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// add appends a notification, evicting the oldest parked entries beyond the
// cap. It returns the assigned sequence and the sequences of evicted
// entries (so replication can mirror the evictions as acks).
func (mb *mailbox) add(n Notification) (seq uint64, evicted []uint64, err error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	seq = mb.nextSeq
	mb.nextSeq++
	if err := mb.walAppend(seq, n); err != nil {
		return 0, nil, err
	}
	mb.entries = append(mb.entries, entry{seq: seq, n: n, inflight: true})
	// Evict oldest parked entries when over capacity; inflight entries are
	// spoken for (their shard will ack or park them).
	for len(mb.entries) > mb.cap {
		idx := -1
		for i := range mb.entries {
			if !mb.entries[i].inflight {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		gone := mb.entries[idx].seq
		mb.entries = append(mb.entries[:idx], mb.entries[idx+1:]...)
		_ = mb.walAck(gone)
		evicted = append(evicted, gone)
	}
	mb.maybeCompactLocked()
	return seq, evicted, nil
}

// ack removes delivered entries, returning the sequences actually removed.
func (mb *mailbox) ack(seqs []uint64) []uint64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	gone := make(map[uint64]bool, len(seqs))
	for _, s := range seqs {
		gone[s] = true
	}
	var acked []uint64
	kept := mb.entries[:0]
	for _, e := range mb.entries {
		if gone[e.seq] {
			_ = mb.walAck(e.seq)
			acked = append(acked, e.seq)
			continue
		}
		kept = append(kept, e)
	}
	mb.entries = kept
	mb.maybeCompactLocked()
	return acked
}

// applyAppend installs a replicated entry with the primary's sequence,
// parked (the standby delivers nothing until promotion). Entries arrive in
// per-sender order but concurrent producers may interleave sequences, so the
// entry is inserted in seq order; a re-applied sequence (snapshot/stream
// overlap) is a no-op.
func (mb *mailbox) applyAppend(seq uint64, n Notification) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	idx := len(mb.entries)
	for i := range mb.entries {
		if mb.entries[i].seq == seq {
			return nil // duplicate (snapshot overlap): already present
		}
		if mb.entries[i].seq > seq {
			idx = i
			break
		}
	}
	if err := mb.walAppend(seq, n); err != nil {
		return err
	}
	mb.entries = append(mb.entries, entry{})
	copy(mb.entries[idx+1:], mb.entries[idx:])
	mb.entries[idx] = entry{seq: seq, n: n}
	if seq >= mb.nextSeq {
		mb.nextSeq = seq + 1
	}
	mb.maybeCompactLocked()
	return nil
}

// applyAck removes a replicated-delivered entry. Unknown sequences are
// ignored (pre-snapshot residue of the stream).
func (mb *mailbox) applyAck(seq uint64) {
	mb.ack([]uint64{seq})
}

// export copies the pending set (parked and inflight) in seq order.
func (mb *mailbox) export() (nextSeq uint64, entries []entry) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.nextSeq, append([]entry(nil), mb.entries...)
}

// replaceAll substitutes the whole pending set (snapshot apply), parking
// every entry, and rewrites the WAL to match.
func (mb *mailbox) replaceAll(nextSeq uint64, entries []entry) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.entries = mb.entries[:0]
	for _, e := range entries {
		mb.entries = append(mb.entries, entry{seq: e.seq, n: e.n})
	}
	if nextSeq > mb.nextSeq {
		mb.nextSeq = nextSeq
	}
	if mb.wal != nil {
		return mb.compactLocked()
	}
	return nil
}

// park marks an entry at rest (undelivered, waiting for attach).
func (mb *mailbox) park(seq uint64) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i := range mb.entries {
		if mb.entries[i].seq == seq {
			mb.entries[i].inflight = false
			return
		}
	}
}

// takePending marks every parked entry inflight and returns them in order,
// for redelivery through the pipeline.
func (mb *mailbox) takePending() []item {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var out []item
	for i := range mb.entries {
		if !mb.entries[i].inflight {
			mb.entries[i].inflight = true
			out = append(out, item{n: mb.entries[i].n, seq: mb.entries[i].seq})
		}
	}
	return out
}

// parkedCount reports entries at rest.
func (mb *mailbox) parkedCount() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for i := range mb.entries {
		if !mb.entries[i].inflight {
			n++
		}
	}
	return n
}

// pendingCount reports all undelivered entries (parked and inflight).
func (mb *mailbox) pendingCount() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.entries)
}

// close compacts (snapshotting live entries) and closes the WAL.
func (mb *mailbox) close() error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.wal == nil {
		return nil
	}
	err := mb.compactLocked()
	cerr := mb.wal.Close()
	mb.wal = nil
	if err != nil {
		return err
	}
	return cerr
}

// ---------------------------------------------------------------------------
// WAL encoding

func (mb *mailbox) walAppend(seq uint64, n Notification) error {
	if mb.wal == nil {
		return nil
	}
	mb.totalRecords++
	payload, err := marshalNotification(n)
	if err != nil {
		return err
	}
	buf := make([]byte, 1+8+4, 1+8+4+len(payload))
	buf[0] = recAppend
	binary.BigEndian.PutUint64(buf[1:9], seq)
	binary.BigEndian.PutUint32(buf[9:13], uint32(len(payload)))
	buf = append(buf, payload...)
	if _, err := mb.wal.Write(buf); err != nil {
		return fmt.Errorf("delivery: wal append: %w", err)
	}
	return nil
}

func (mb *mailbox) walAck(seq uint64) error {
	if mb.wal == nil {
		return nil
	}
	mb.totalRecords++
	mb.deadRecords++
	var buf [1 + 8]byte
	buf[0] = recAck
	binary.BigEndian.PutUint64(buf[1:9], seq)
	if _, err := mb.wal.Write(buf[:]); err != nil {
		return fmt.Errorf("delivery: wal ack: %w", err)
	}
	return nil
}

// maybeCompactLocked compacts once the dead-record count crosses the
// threshold and outweighs the live set.
func (mb *mailbox) maybeCompactLocked() {
	if mb.wal == nil || mb.deadRecords < mb.compactAt || mb.deadRecords*2 < len(mb.entries) {
		return
	}
	_ = mb.compactLocked()
}

// writeSnapshotLocked writes the live entries as a fresh WAL (append
// records only) to path, fsynced — the first phase of compaction. It is a
// separate step so the crash-recovery tests can reproduce a kill between
// the snapshot write and the rename.
func (mb *mailbox) writeSnapshotLocked(path string) error {
	tmp, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("delivery: compact: %w", err)
	}
	for _, e := range mb.entries {
		payload, err := marshalNotification(e.n)
		if err != nil {
			tmp.Close()
			os.Remove(path)
			return err
		}
		buf := make([]byte, 1+8+4, 1+8+4+len(payload))
		buf[0] = recAppend
		binary.BigEndian.PutUint64(buf[1:9], e.seq)
		binary.BigEndian.PutUint32(buf[9:13], uint32(len(payload)))
		buf = append(buf, payload...)
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			os.Remove(path)
			return fmt.Errorf("delivery: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(path)
		return fmt.Errorf("delivery: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("delivery: compact close: %w", err)
	}
	return nil
}

// compactLocked rewrites the WAL as a snapshot of the live entries: write a
// temp file, fsync, rename over the log, reopen for append.
func (mb *mailbox) compactLocked() error {
	if mb.wal == nil {
		return nil
	}
	tmpPath := mb.walPath + ".tmp"
	if err := mb.writeSnapshotLocked(tmpPath); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, mb.walPath); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("delivery: compact rename: %w", err)
	}
	_ = mb.wal.Close()
	f, err := os.OpenFile(mb.walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		mb.wal = nil
		return fmt.Errorf("delivery: compact reopen: %w", err)
	}
	mb.wal = f
	mb.totalRecords = len(mb.entries)
	mb.deadRecords = 0
	return nil
}

// walReader decodes WAL records from a stream.
type walReader struct {
	r io.Reader
}

func newWALReader(r io.Reader) *walReader { return &walReader{r: r} }

// next returns the next record; io.EOF at a clean end, other errors on a
// torn or corrupt tail.
func (w *walReader) next() (kind byte, seq uint64, n Notification, err error) {
	var head [1 + 8]byte
	if _, err = io.ReadFull(w.r, head[:1]); err != nil {
		return 0, 0, n, io.EOF
	}
	kind = head[0]
	if kind != recAppend && kind != recAck {
		return 0, 0, n, fmt.Errorf("delivery: wal: bad record kind %q", kind)
	}
	if _, err = io.ReadFull(w.r, head[1:9]); err != nil {
		return 0, 0, n, fmt.Errorf("delivery: wal: torn header: %w", err)
	}
	seq = binary.BigEndian.Uint64(head[1:9])
	if kind == recAck {
		return kind, seq, n, nil
	}
	var lenBuf [4]byte
	if _, err = io.ReadFull(w.r, lenBuf[:]); err != nil {
		return 0, 0, n, fmt.Errorf("delivery: wal: torn length: %w", err)
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > maxWALRecord {
		return 0, 0, n, fmt.Errorf("delivery: wal: record size %d exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err = io.ReadFull(w.r, payload); err != nil {
		return 0, 0, n, fmt.Errorf("delivery: wal: torn payload: %w", err)
	}
	n, err = unmarshalNotification(payload)
	if err != nil {
		return 0, 0, n, err
	}
	return kind, seq, n, nil
}

// ---------------------------------------------------------------------------
// Notification serialisation (the same XML forms the wire protocol uses)

// rawXML embeds pre-marshalled XML verbatim inside a wrapping element (the
// same idiom internal/protocol uses for events on the wire).
type rawXML struct {
	Inner []byte `xml:",innerxml"`
}

// walNotification is the persisted form of a Notification.
type walNotification struct {
	XMLName      xml.Name `xml:"Notification"`
	Client       string   `xml:"Client"`
	ProfileID    string   `xml:"ProfileID"`
	DocIDs       []string `xml:"Docs>ID,omitempty"`
	AtNano       int64    `xml:"At,omitempty"`
	Composite    string   `xml:"Composite,omitempty"`
	Class        string   `xml:"Class,omitempty"`
	Trace        string   `xml:"Trace,omitempty"`
	Event        rawXML   `xml:"Event"`
	Contributing []rawXML `xml:"Contributing>Event,omitempty"`
}

func marshalNotification(n Notification) ([]byte, error) {
	w := walNotification{
		Client:    n.Client,
		ProfileID: n.ProfileID,
		DocIDs:    n.DocIDs,
		AtNano:    n.At.UnixNano(),
		Composite: n.Composite,
		Trace:     n.Trace.String(),
	}
	if n.Class != qos.ClassNormal {
		w.Class = n.Class.String()
	}
	if n.Event != nil {
		raw, err := n.Event.MarshalXMLBytes()
		if err != nil {
			return nil, fmt.Errorf("delivery: marshal event: %w", err)
		}
		w.Event.Inner = raw
	}
	for _, ev := range n.Contributing {
		raw, err := ev.MarshalXMLBytes()
		if err != nil {
			return nil, fmt.Errorf("delivery: marshal contributing event: %w", err)
		}
		w.Contributing = append(w.Contributing, rawXML{Inner: raw})
	}
	out, err := xml.Marshal(&w)
	if err != nil {
		return nil, fmt.Errorf("delivery: marshal notification: %w", err)
	}
	return out, nil
}

func unmarshalNotification(raw []byte) (Notification, error) {
	var w walNotification
	if err := xml.Unmarshal(raw, &w); err != nil {
		return Notification{}, fmt.Errorf("delivery: unmarshal notification: %w", err)
	}
	n := Notification{
		Client:    w.Client,
		ProfileID: w.ProfileID,
		DocIDs:    w.DocIDs,
		Composite: w.Composite,
	}
	// A class this build does not know (or a corrupt field) degrades to
	// normal rather than failing recovery.
	if class, err := qos.ParseClass(w.Class); err == nil {
		n.Class = class
	}
	// A malformed trace field degrades to untraced the same way.
	if tctx, ok := trace.Parse(w.Trace); ok {
		n.Trace = tctx
	}
	if w.AtNano != 0 {
		n.At = time.Unix(0, w.AtNano)
	}
	if len(w.Event.Inner) > 0 {
		ev, err := event.UnmarshalXMLBytes(w.Event.Inner)
		if err != nil {
			return Notification{}, fmt.Errorf("delivery: unmarshal event: %w", err)
		}
		n.Event = ev
	}
	for _, raw := range w.Contributing {
		ev, err := event.UnmarshalXMLBytes(raw.Inner)
		if err != nil {
			return Notification{}, fmt.Errorf("delivery: unmarshal contributing event: %w", err)
		}
		n.Contributing = append(n.Contributing, ev)
	}
	return n, nil
}
