package queue

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

// Property: deliveries stay FIFO per destination under link-level
// transport faults. The queue's contract is partition recovery (package
// doc): when a destination's link is down, every send to it fails; when it
// heals, the backlog drains oldest-first. Because link faults fail or pass
// a destination's traffic wholesale — never one message out of the middle
// — the per-destination success order must equal the per-destination
// enqueue order, across any pattern of partitions between flushes.
//
// The faults come from a real transport.FaultInjector wrapping the memory
// transport (drop=1 rules scoped To one destination — the chaos harness's
// link-fault shape), not from a stubbed error: the property holds against
// the same fault surface the E16 soak drives.
func TestQueueFIFOPerDestinationUnderLinkFaults(t *testing.T) {
	const (
		dests  = 5
		items  = 200
		rounds = 400
	)
	rng := rand.New(rand.NewSource(16))
	mem := transport.NewMemory(16)
	defer mem.Close()
	inj := transport.NewFaultInjector(mem, 16)

	delivered := make(map[string][]string)
	for d := 0; d < dests; d++ {
		dest := fmt.Sprintf("gs://D%d", d)
		if _, err := mem.Listen(dest, transport.HandlerFunc(
			func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
				var id string
				if err := protocol.Decode(env, protocol.MsgPing, &id); err != nil {
					return nil, err
				}
				delivered[dest] = append(delivered[dest], id)
				return nil, nil
			})); err != nil {
			t.Fatal(err)
		}
	}

	sender := func(ctx context.Context, it *Item) error {
		env, err := protocol.NewEnvelope("q", protocol.MsgPing, it.ID)
		if err != nil {
			return err
		}
		_, err = inj.Send(ctx, it.Dest, env)
		return err
	}
	clock := time.Unix(0, 0)
	q, err := New(sender, WithClock(func() time.Time { return clock }))
	if err != nil {
		t.Fatal(err)
	}

	enqueued := make(map[string][]string)
	for i := 0; i < items; i++ {
		dest := fmt.Sprintf("gs://D%d", rng.Intn(dests))
		id := fmt.Sprintf("item-%03d", i)
		q.Add(id, dest, nil)
		enqueued[dest] = append(enqueued[dest], id)
	}

	ctx := context.Background()
	for r := 0; r < rounds && q.Len() > 0; r++ {
		// A random subset of destinations is partitioned this round.
		inj.ClearRules()
		for d := 0; d < dests; d++ {
			if rng.Intn(2) == 0 {
				inj.AddRule(transport.FaultRule{To: fmt.Sprintf("gs://D%d", d), DropRate: 1})
			}
		}
		q.Flush(ctx, true)
	}
	inj.ClearRules()
	q.Flush(ctx, true)

	if q.Len() != 0 {
		t.Fatalf("%d items still queued after healing every link", q.Len())
	}
	st := q.Stats()
	if st.Succeeded != items {
		t.Fatalf("succeeded %d of %d", st.Succeeded, items)
	}
	if st.Failed == 0 || inj.Stats().Dropped == 0 {
		t.Fatalf("no send ever failed (failed=%d, injector dropped=%d) — the fault pattern is vacuous",
			st.Failed, inj.Stats().Dropped)
	}
	for dest, want := range enqueued {
		got := delivered[dest]
		if len(got) != len(want) {
			t.Fatalf("%s delivered %d of %d items", dest, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s delivery %d = %s, want %s (FIFO violated)\ngot: %v\nwant: %v",
					dest, i, got[i], want[i], got, want)
			}
		}
	}
}
