package queue

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type fakeSender struct {
	mu       sync.Mutex
	failing  map[string]bool // dest -> failing?
	sent     []string
	failures int
}

func newFakeSender() *fakeSender {
	return &fakeSender{failing: make(map[string]bool)}
}

func (f *fakeSender) send(_ context.Context, it *Item) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing[it.Dest] {
		f.failures++
		return fmt.Errorf("dest %s unreachable", it.Dest)
	}
	f.sent = append(f.sent, it.ID)
	return nil
}

func (f *fakeSender) setFailing(dest string, v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failing[dest] = v
}

func (f *fakeSender) sentIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.sent...)
}

func TestNewRequiresSender(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil sender accepted")
	}
}

func TestFlushDeliversInOrder(t *testing.T) {
	fs := newFakeSender()
	now := time.Unix(1000, 0)
	q, err := New(fs.send, WithClock(func() time.Time { now = now.Add(time.Millisecond); return now }))
	if err != nil {
		t.Fatal(err)
	}
	q.Add("a", "X", nil)
	q.Add("b", "X", nil)
	q.Add("c", "X", nil)
	if n := q.Flush(context.Background(), false); n != 3 {
		t.Fatalf("delivered %d", n)
	}
	if got := fs.sentIDs(); fmt.Sprint(got) != "[a b c]" {
		t.Errorf("order = %v", got)
	}
	if q.Len() != 0 {
		t.Errorf("len = %d after flush", q.Len())
	}
	st := q.Stats()
	if st.Succeeded != 3 || st.Failed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetryAfterPartitionHeals(t *testing.T) {
	fs := newFakeSender()
	fs.setFailing("London", true)
	base := time.Unix(1000, 0)
	now := base
	q, _ := New(fs.send,
		WithClock(func() time.Time { return now }),
		WithBackoff(time.Second, time.Minute))
	q.Add("aux1", "London", "install")

	if n := q.Flush(context.Background(), false); n != 0 {
		t.Fatalf("delivered through partition: %d", n)
	}
	if q.Len() != 1 {
		t.Fatal("item lost after failure")
	}
	// Within backoff window: skipped.
	if n := q.Flush(context.Background(), false); n != 0 {
		t.Fatal("flushed before backoff elapsed")
	}
	if fs.failures != 1 {
		t.Fatalf("failures = %d, want 1 (backoff suppressed retry)", fs.failures)
	}
	// Heal and advance beyond backoff.
	fs.setFailing("London", false)
	now = now.Add(2 * time.Second)
	if n := q.Flush(context.Background(), false); n != 1 {
		t.Fatalf("delivered = %d after heal", n)
	}
	if got := fs.sentIDs(); len(got) != 1 || got[0] != "aux1" {
		t.Errorf("sent = %v", got)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	fs := newFakeSender()
	fs.setFailing("X", true)
	now := time.Unix(0, 0)
	q, _ := New(fs.send,
		WithClock(func() time.Time { return now }),
		WithBackoff(time.Second, 8*time.Second))
	q.Add("i", "X", nil)
	for i := 0; i < 6; i++ {
		q.Flush(context.Background(), true) // force ignores backoff window
	}
	items := q.Pending()
	if len(items) != 1 {
		t.Fatal("item missing")
	}
	if items[0].Attempts() != 6 {
		t.Errorf("attempts = %d", items[0].Attempts())
	}
	// After 6 failures backoff would be 32s but caps at 8s.
	// (nextAttempt is private; verify behaviourally: at +7s not eligible,
	// at +9s eligible.)
	fs.setFailing("X", false)
	now = now.Add(7 * time.Second)
	if n := q.Flush(context.Background(), false); n != 0 {
		t.Error("delivered before capped backoff elapsed")
	}
	now = now.Add(2 * time.Second)
	if n := q.Flush(context.Background(), false); n != 1 {
		t.Error("not delivered after capped backoff")
	}
}

func TestReplaceAndRemove(t *testing.T) {
	fs := newFakeSender()
	q, _ := New(fs.send)
	q.Add("id1", "X", "v1")
	q.Add("id1", "X", "v2") // replace
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	if !q.Remove("id1") {
		t.Error("remove existing = false")
	}
	if q.Remove("id1") {
		t.Error("remove twice = true")
	}
	q.Add("a", "X", nil)
	q.Add("b", "Y", nil)
	n := q.RemoveMatching(func(it *Item) bool { return it.Dest == "Y" })
	if n != 1 || q.Len() != 1 {
		t.Errorf("RemoveMatching = %d, len = %d", n, q.Len())
	}
}

func TestFlushRespectsContext(t *testing.T) {
	fs := newFakeSender()
	q, _ := New(fs.send)
	for i := 0; i < 10; i++ {
		q.Add(fmt.Sprintf("i%d", i), "X", nil)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n := q.Flush(ctx, false); n != 0 {
		t.Errorf("delivered %d with cancelled context", n)
	}
	if q.Len() != 10 {
		t.Errorf("items lost: %d", q.Len())
	}
}

func TestBackgroundFlusher(t *testing.T) {
	fs := newFakeSender()
	q, _ := New(fs.send)
	if err := q.Start(-1); err == nil {
		t.Error("negative interval accepted")
	}
	if err := q.Start(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := q.Start(5 * time.Millisecond); err == nil {
		t.Error("double start accepted")
	}
	q.Add("bg1", "X", nil)
	deadline := time.After(2 * time.Second)
	for q.Len() > 0 {
		select {
		case <-deadline:
			t.Fatal("background flusher never delivered")
		case <-time.After(5 * time.Millisecond):
		}
	}
	q.Stop()
	q.Stop() // idempotent
	if got := fs.sentIDs(); len(got) != 1 || got[0] != "bg1" {
		t.Errorf("sent = %v", got)
	}
}

func TestSenderErrorKeepsPayload(t *testing.T) {
	attempts := 0
	q, _ := New(func(_ context.Context, it *Item) error {
		attempts++
		if attempts < 3 {
			return errors.New("flaky")
		}
		if it.Payload.(string) != "precious" {
			t.Errorf("payload = %v", it.Payload)
		}
		return nil
	})
	q.Add("x", "D", "precious")
	for i := 0; i < 3; i++ {
		q.Flush(context.Background(), true)
	}
	if q.Len() != 0 {
		t.Error("item not delivered after success")
	}
	if st := q.Stats(); st.Failed != 2 || st.Succeeded != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestConcurrentStartFlushStop is the -race exercise: Start, Flush, Stop,
// Add and Remove racing from many goroutines must neither data-race nor
// deliver an item twice.
func TestConcurrentStartFlushStop(t *testing.T) {
	var mu sync.Mutex
	sent := make(map[string]int)
	q, err := New(func(_ context.Context, it *Item) error {
		mu.Lock()
		sent[it.ID]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q.Add(fmt.Sprintf("it-%d-%d", w, i), "D", i)
				if i%5 == 0 {
					q.Flush(context.Background(), true)
				}
				if i%7 == 0 {
					_ = q.Start(time.Millisecond) // may already be started
				}
				if i%11 == 0 {
					q.Stop()
				}
				if i%13 == 0 {
					q.Remove(fmt.Sprintf("it-%d-%d", w, i/2))
				}
			}
		}(w)
	}
	wg.Wait()
	q.Flush(context.Background(), true)
	q.Stop()
	mu.Lock()
	defer mu.Unlock()
	for id, n := range sent {
		if n > 1 {
			t.Errorf("item %s delivered %d times", id, n)
		}
	}
	if q.Len() != 0 {
		t.Errorf("%d items left queued after final flush", q.Len())
	}
}

// TestFlushDuringHealFIFOPerDestination models the partition-heal drain: a
// frozen deterministic clock stamps every spooled item with the same
// enqueue time, and the flush after "healing" must still deliver them in
// admission (FIFO) order per destination — the seq tie-break, without which
// equal timestamps sort unstably.
func TestFlushDuringHealFIFOPerDestination(t *testing.T) {
	frozen := time.Unix(500, 0)
	var order []string
	down := true
	q, err := New(func(_ context.Context, it *Item) error {
		if down {
			return errors.New("partitioned")
		}
		order = append(order, it.ID)
		return nil
	}, WithClock(func() time.Time { return frozen }))
	if err != nil {
		t.Fatal(err)
	}
	const perDest = 20
	for i := 0; i < perDest; i++ {
		q.Add(fmt.Sprintf("a-%02d", i), "DestA", i)
		q.Add(fmt.Sprintf("b-%02d", i), "DestB", i)
	}
	// Flush into the partition: everything fails, stays queued.
	if n := q.Flush(context.Background(), true); n != 0 {
		t.Fatalf("delivered %d through a partition", n)
	}
	// Heal and drain.
	down = false
	if n := q.Flush(context.Background(), true); n != 2*perDest {
		t.Fatalf("delivered %d of %d after heal", n, 2*perDest)
	}
	// Per destination, delivery follows admission order exactly.
	var gotA, gotB []string
	for _, id := range order {
		if strings.HasPrefix(id, "a-") {
			gotA = append(gotA, id)
		} else {
			gotB = append(gotB, id)
		}
	}
	for i := 0; i < perDest; i++ {
		if wantA := fmt.Sprintf("a-%02d", i); gotA[i] != wantA {
			t.Fatalf("DestA position %d = %s, want %s (order %v)", i, gotA[i], wantA, gotA)
		}
		if wantB := fmt.Sprintf("b-%02d", i); gotB[i] != wantB {
			t.Fatalf("DestB position %d = %s, want %s (order %v)", i, gotB[i], wantB, gotB)
		}
	}
	// Pending() reports the same deterministic order.
	q.Add("z-1", "DestA", 1)
	q.Add("z-0", "DestA", 0)
	pending := q.Pending()
	if len(pending) != 2 || pending[0].ID != "z-1" || pending[1].ID != "z-0" {
		t.Errorf("pending order = %v", pending)
	}
}
