// Package queue provides a retry/spool queue for server-to-server messages
// that must survive network partitions: auxiliary profile installs/cancels
// and forwarded events (paper §7: "as soon as the network connection is
// re-established, any deletion or update of the auxiliary profile ... can be
// performed"; "notifications ... would be delayed until the network
// connection is reestablished").
//
// The queue has two modes. In deterministic mode (the default) nothing
// happens until Flush is called — simulations call Flush after healing a
// partition, keeping experiments reproducible. Start launches a background
// flusher for live deployments; Stop waits for it to exit (no fire-and-
// forget goroutines).
package queue

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Item is one queued delivery.
type Item struct {
	// ID identifies the item; re-adding an ID replaces the older item
	// (a cancel superseding a queued install reuses the install's ID).
	ID string
	// Dest is the logical destination (server name), used for reporting.
	Dest string
	// Payload is opaque to the queue.
	Payload any

	attempts    int
	nextAttempt time.Time
	enqueuedAt  time.Time
	// seq is a monotonic admission number breaking enqueuedAt ties, so
	// flush order is FIFO even under a frozen deterministic clock (equal
	// timestamps would otherwise sort unstably).
	seq uint64
}

// Attempts reports how many sends have failed so far.
func (it *Item) Attempts() int { return it.attempts }

// Sender delivers one item; a nil return removes the item from the queue.
type Sender func(ctx context.Context, item *Item) error

// Queue retries failed deliveries with exponential backoff.
type Queue struct {
	sender  Sender
	baseOff time.Duration
	maxOff  time.Duration
	now     func() time.Time

	mu      sync.Mutex
	items   map[string]*Item
	nextSeq uint64

	stop chan struct{}
	done chan struct{}

	// counters
	succeeded int64
	failed    int64
	dropped   int64
}

// Option configures a Queue.
type Option func(*Queue)

// WithBackoff sets the base and maximum retry backoff.
func WithBackoff(base, maxBackoff time.Duration) Option {
	return func(q *Queue) {
		if base > 0 {
			q.baseOff = base
		}
		if maxBackoff > 0 {
			q.maxOff = maxBackoff
		}
	}
}

// WithClock overrides the time source (deterministic tests).
func WithClock(now func() time.Time) Option {
	return func(q *Queue) { q.now = now }
}

// New builds a queue delivering through sender.
func New(sender Sender, opts ...Option) (*Queue, error) {
	if sender == nil {
		return nil, errors.New("queue: nil sender")
	}
	q := &Queue{
		sender:  sender,
		baseOff: 250 * time.Millisecond,
		maxOff:  30 * time.Second,
		now:     time.Now,
		items:   make(map[string]*Item),
	}
	for _, o := range opts {
		o(q)
	}
	return q, nil
}

// Add enqueues (or replaces) an item; it does not attempt delivery.
func (q *Queue) Add(id, dest string, payload any) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextSeq++
	q.items[id] = &Item{
		ID:         id,
		Dest:       dest,
		Payload:    payload,
		enqueuedAt: q.now(),
		seq:        q.nextSeq,
		// immediately eligible
		nextAttempt: q.now(),
	}
}

// Remove drops an item (e.g. a queued install superseded by a cancel),
// reporting whether it was present.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.items[id]; !ok {
		return false
	}
	delete(q.items, id)
	q.dropped++
	return true
}

// RemoveMatching drops every item the predicate selects, returning how many.
func (q *Queue) RemoveMatching(pred func(*Item) bool) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for id, it := range q.items {
		if pred(it) {
			delete(q.items, id)
			n++
		}
	}
	q.dropped += int64(n)
	return n
}

// Len reports queued items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Pending returns a snapshot of queued items, ordered by enqueue time.
func (q *Queue) Pending() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Item, 0, len(q.items))
	for _, it := range q.items {
		out = append(out, *it)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].enqueuedAt.Equal(out[j].enqueuedAt) {
			return out[i].enqueuedAt.Before(out[j].enqueuedAt)
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Stats reports cumulative delivery counters.
type Stats struct {
	Succeeded int64
	Failed    int64
	Dropped   int64
	Queued    int
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{Succeeded: q.succeeded, Failed: q.failed, Dropped: q.dropped, Queued: len(q.items)}
}

// Flush attempts delivery of every eligible item once, returning how many
// succeeded. Items whose backoff window has not elapsed are skipped unless
// force is set.
func (q *Queue) Flush(ctx context.Context, force bool) int {
	now := q.now()
	q.mu.Lock()
	eligible := make([]*Item, 0, len(q.items))
	for _, it := range q.items {
		if force || !now.Before(it.nextAttempt) {
			eligible = append(eligible, it)
		}
	}
	// Deterministic order: oldest first, admission sequence breaking
	// timestamp ties (FIFO per destination follows: same-destination items
	// share the clock and are distinguished by seq).
	sort.Slice(eligible, func(i, j int) bool {
		if !eligible[i].enqueuedAt.Equal(eligible[j].enqueuedAt) {
			return eligible[i].enqueuedAt.Before(eligible[j].enqueuedAt)
		}
		return eligible[i].seq < eligible[j].seq
	})
	q.mu.Unlock()

	delivered := 0
	for _, it := range eligible {
		if ctx.Err() != nil {
			break
		}
		err := q.sender(ctx, it)
		q.mu.Lock()
		if _, still := q.items[it.ID]; !still {
			// Removed concurrently (superseded); ignore the outcome.
			q.mu.Unlock()
			continue
		}
		if err == nil {
			delete(q.items, it.ID)
			q.succeeded++
			delivered++
		} else {
			it.attempts++
			q.failed++
			backoff := q.baseOff << uint(minInt(it.attempts-1, 20))
			if backoff > q.maxOff || backoff <= 0 {
				backoff = q.maxOff
			}
			it.nextAttempt = q.now().Add(backoff)
		}
		q.mu.Unlock()
	}
	return delivered
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Start launches the background flusher with the given polling interval.
// It returns an error if already started. Stop shuts it down and waits.
func (q *Queue) Start(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("queue: non-positive interval %v", interval)
	}
	q.mu.Lock()
	if q.stop != nil {
		q.mu.Unlock()
		return errors.New("queue: already started")
	}
	q.stop = make(chan struct{})
	q.done = make(chan struct{})
	stop, done := q.stop, q.done
	q.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				q.Flush(ctx, false)
				cancel()
			}
		}
	}()
	return nil
}

// Stop halts the background flusher and waits for it to exit. It is safe to
// call when never started.
func (q *Queue) Stop() {
	q.mu.Lock()
	stop, done := q.stop, q.done
	q.stop, q.done = nil, nil
	q.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
