package gds

import (
	"context"
	"sort"
	"time"

	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

// Content-based routing (the third dissemination mode, extending the
// paper's §6 multicast with SIENA-style subscription covering).
//
// Every tree link — a directly registered server or a child directory
// node — may advertise a profile digest (profile.Digest): a DNF over
// event-level attributes summarising every profile reachable over that
// link. The node keeps one digest per link, merges them (with the
// covering prune) into a subtree aggregate, and advertises that aggregate
// to its own parent whenever it changes. Content-routed events then climb
// to the root unconditionally and descend only into links whose digest
// matches the event's attributes.
//
// A link that has never advertised is "unwarm" and treated as match-all:
// servers that do not speak content routing, and tables still being
// populated, degrade to flooding rather than losing events. An unwarm
// link also forces the node's upward aggregate to match-all, so the
// fallback is transitive up the tree.

// linkDigestLocked returns the digest advertised over a link, with the
// match-all default for unwarm links. Callers hold n.mu.
func (n *Node) linkDigestLocked(link string) profile.Digest {
	if d, ok := n.digests[link]; ok {
		return d
	}
	return profile.TopDigest()
}

// aggregateDigestLocked merges every link digest into the subtree
// summary. Any unwarm link widens the aggregate to match-all. Callers
// hold n.mu.
func (n *Node) aggregateDigestLocked() profile.Digest {
	parts := make([]profile.Digest, 0, len(n.servers)+len(n.children))
	for name := range n.servers {
		d, ok := n.digests[name]
		if !ok {
			return profile.TopDigest()
		}
		parts = append(parts, d)
	}
	for child := range n.children {
		d, ok := n.digests[child]
		if !ok {
			return profile.TopDigest()
		}
		parts = append(parts, d)
	}
	return profile.MergeDigests(parts...)
}

func (n *Node) handleAdvertiseProfiles(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var ap protocol.AdvertiseProfiles
	if err := protocol.Decode(env, protocol.MsgAdvertiseProfiles, &ap); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	if ap.Name == "" {
		return protocol.Errorf(n.id, "advertise", "name required"), nil
	}
	digest, err := profile.ParseDigest(ap.Digest)
	if err != nil {
		return protocol.Errorf(n.id, "advertise", "bad digest: %v", err), nil
	}
	n.mu.Lock()
	n.digests[ap.Name] = digest
	n.mu.Unlock()
	n.propagateDigest(ctx)
	return protocol.Ack(n.id, env), nil
}

func (n *Node) handleUnadvertiseProfiles(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var up protocol.UnadvertiseProfiles
	if err := protocol.Decode(env, protocol.MsgUnadvertiseProfiles, &up); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	n.mu.Lock()
	_, existed := n.digests[up.Name]
	delete(n.digests, up.Name)
	n.mu.Unlock()
	if existed {
		n.propagateDigest(ctx)
	}
	return protocol.Ack(n.id, env), nil
}

// propagateDigest recomputes the subtree aggregate and re-advertises it to
// the parent when it changed since the last advertisement — the covering
// prune for advertisement traffic: a new profile covered by the already
// advertised aggregate leaves the (normalised) aggregate unchanged and
// travels no further up the tree.
//
// The compute-compare-send sequence runs under n.advMu so concurrent
// handlers cannot reorder advertisements on the wire: without it a stale
// (narrower) aggregate could be sent after a fresh one and win at the
// parent, which would then prune a subtree that does hold the interest.
func (n *Node) propagateDigest(ctx context.Context) {
	n.advMu.Lock()
	defer n.advMu.Unlock()
	n.mu.Lock()
	parentAddr := n.parentAddr
	if parentAddr == "" {
		n.mu.Unlock()
		return
	}
	agg := n.aggregateDigestLocked()
	canon := agg.Canonical()
	if n.advertisedUp && canon == n.advertised {
		n.mu.Unlock()
		return
	}
	n.advertised = canon
	n.advertisedUp = true
	n.mu.Unlock()
	env, err := protocol.NewEnvelope(n.id, protocol.MsgAdvertiseProfiles, &protocol.AdvertiseProfiles{
		Name:   n.id,
		Digest: agg.Strings(),
	})
	if err != nil {
		return
	}
	_ = transport.SendOneWay(ctx, n.tr, parentAddr, env) // best effort
}

// handleRouteContent disseminates the wrapped envelope content-based:
// deliver to directly registered servers whose digest matches, climb
// towards the root, and descend only into child subtrees whose digest
// matches (paper §6's multicast descent, with digests instead of group
// membership). Flooded (fallback) messages take the broadcast paths.
func (n *Node) handleRouteContent(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	hopStart := time.Now()
	if n.dedup.Observe(env.Header.ID) {
		return protocol.Ack(n.id, env), nil
	}
	var rc protocol.RouteContent
	if err := protocol.Decode(env, protocol.MsgRouteContent, &rc); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	inner, err := protocol.Unmarshal(rc.Inner)
	if err != nil {
		return protocol.Errorf(n.id, "inner", "%v", err), nil
	}
	if rc.Flood {
		n.m.ContentFlooded.Inc()
		n.log.Debug("content envelope took flood fallback",
			logging.String("from", env.Header.From))
	} else {
		n.m.ContentRouted.Inc()
	}
	attrs := rc.AttrMap()

	n.mu.Lock()
	from := env.Header.From
	targets := make([]string, 0, len(n.servers))
	for name, addr := range n.servers {
		if name == from {
			continue // do not echo to the originating server
		}
		if rc.Flood || n.linkDigestLocked(name).Matches(attrs) {
			targets = append(targets, addr)
		}
	}
	relays := make([]string, 0, len(n.children)+1)
	if n.parentAddr != "" && from != n.parentID {
		relays = append(relays, n.parentAddr)
	}
	for childID, childAddr := range n.children {
		if childID == from {
			continue
		}
		if rc.Flood || n.linkDigestLocked(childID).Matches(attrs) {
			relays = append(relays, childAddr)
		}
	}
	n.mu.Unlock()
	// Deterministic fan-out, as in handleBroadcast.
	sort.Strings(targets)
	sort.Strings(relays)

	mode := "content"
	if rc.Flood {
		mode = "content-flood"
	}
	hopCtx := n.hopSpan(env, hopStart, mode)

	for _, addr := range targets {
		delivery := inner.Clone()
		delivery.Header.VirtualLatencyMicros = env.Header.VirtualLatencyMicros
		delivery.Header.Hops = env.Header.Hops
		delivery.Header.From = n.id
		if hopCtx != "" {
			delivery.Header.Trace = hopCtx
		}
		_ = transport.SendOneWay(ctx, n.tr, addr, delivery) // best effort
		n.m.Deliveries.Inc()
	}
	if env.Forwardable() {
		for _, addr := range relays {
			fwd := env.NextHop()
			fwd.Header.From = n.id
			if hopCtx != "" {
				fwd.Header.Trace = hopCtx
			}
			_ = transport.SendOneWay(ctx, n.tr, addr, fwd) // best effort
		}
	}
	return protocol.Ack(n.id, env), nil
}

// ---------------------------------------------------------------------------
// Client side

// AdvertiseProfiles installs (or replaces) this server's profile digest at
// its directory node. An empty digest is the explicit "no interests":
// content-routed events stop descending to this server until a wider
// digest is advertised.
func (c *Client) AdvertiseProfiles(ctx context.Context, d profile.Digest) error {
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgAdvertiseProfiles, &protocol.AdvertiseProfiles{
		Name:   c.serverName,
		Digest: d.Strings(),
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}

// UnadvertiseProfiles withdraws the server's digest; the directory treats
// the server as match-all again (the safe default for servers that leave
// content-routing mode).
func (c *Client) UnadvertiseProfiles(ctx context.Context) error {
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgUnadvertiseProfiles, &protocol.UnadvertiseProfiles{
		Name: c.serverName,
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}

// RouteContent disseminates inner to every server whose advertised digest
// matches attrs. With flood set the message takes the broadcast paths
// instead — the warm-up fallback for publishers that cannot yet rely on
// the routing tables.
func (c *Client) RouteContent(ctx context.Context, attrs map[string]string, inner *protocol.Envelope, flood bool) error {
	raw, err := protocol.Marshal(inner)
	if err != nil {
		return err
	}
	wire := make([]protocol.EventAttr, 0, len(attrs))
	for _, name := range sortedKeys(attrs) {
		wire = append(wire, protocol.EventAttr{Name: name, Value: attrs[name]})
	}
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgRouteContent, &protocol.RouteContent{
		Flood: flood,
		Attrs: wire,
		Inner: raw,
	})
	if err != nil {
		return err
	}
	env.Header.Trace = inner.Header.Trace
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}

// sortedKeys returns the map keys in sorted order so wire forms are
// deterministic.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
