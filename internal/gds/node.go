// Package gds implements the Greenstone Directory Service of paper §4.1/§6:
// a tree of auxiliary directory nodes organised in strata (stratum 1 is the
// primary). Greenstone servers register with exactly one GDS node. The GDS
// provides:
//
//   - a DNS-like naming service: server names resolve to transport
//     addresses, with registrations propagated towards the root so any node
//     can answer for its whole subtree and delegate upwards otherwise;
//   - anonymous best-effort broadcast: a message handed to any node is
//     flooded "upwards within the tree and downwards to all tree leaves",
//     reaching every registered server, with bounded-memory deduplication
//     guarding against duplicates;
//   - multicast groups: joins propagate towards the root like names and
//     multicasts descend only into subtrees that contain members.
package gds

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

// member records one group member and which child subtree (if any) it was
// learned from.
type member struct {
	addr     string
	viaChild string // child node ID, or "" when registered directly here
}

// Node is one GDS installation.
type Node struct {
	id      string
	addr    string
	stratum int
	tr      transport.Transport
	// log is the node's component logger (SetLog); nil no-ops every site.
	log *logging.Logger

	mu         sync.Mutex
	parentID   string
	parentAddr string
	children   map[string]string // child node ID -> addr
	// servers are Greenstone servers registered directly at this node.
	servers map[string]string // server name -> addr
	// subtree is the name table for everything below (and at) this node.
	subtree map[string]string
	// groups maps group name -> member name -> member record.
	groups map[string]map[string]member
	// digests maps a tree link (direct server name or child node ID) to the
	// profile digest advertised over it; absent links are unwarm and treated
	// as match-all (content routing).
	digests map[string]profile.Digest
	// advertised is the canonical aggregate digest last sent to the parent;
	// advertisedUp records whether anything was sent at all. advMu
	// serialises aggregate compute+send (see propagateDigest).
	advMu        sync.Mutex
	advertised   string
	advertisedUp bool

	dedup    *event.Dedup
	listener io.Closer
	closed   bool

	// tracer records one route-hop span per traced dissemination envelope
	// relayed through this node; nil disables hop recording (traced
	// envelopes still pass through unchanged).
	tracer *trace.Tracer

	m Metrics
}

// SetTracer installs (or, with nil, removes) the node's span recorder. Call
// it before traffic flows; the dissemination handlers read it unlocked.
func (n *Node) SetTracer(t *trace.Tracer) { n.tracer = t }

// hopSpan records this node's processing of one traced dissemination
// envelope as a StageRouteHop span covering receive-to-relay (dedup, decode,
// target selection) and returns the re-stamp wire context: deliveries and
// relays carry the hop span as their new parent so a trace's span tree
// mirrors the dissemination tree hop by hop. Untraced envelopes (or a node
// without a tracer) return "" and nothing is recorded. The span closes
// before the sends on purpose: on the synchronous in-memory transport the
// downstream stages run inside the send, and counting them here would
// double-attribute their time.
func (n *Node) hopSpan(env *protocol.Envelope, start time.Time, mode string) string {
	if n.tracer == nil || env.Header.Trace == "" {
		return ""
	}
	parent, ok := trace.Parse(env.Header.Trace)
	if !ok || !parent.Sampled() {
		return ""
	}
	ctx := n.tracer.Record(parent, trace.StageRouteHop, start, time.Since(start), "",
		trace.Attr{Key: "mode", Value: mode},
		trace.Attr{Key: "hops", Value: strconv.Itoa(env.Header.Hops)})
	return ctx.String()
}

// Metrics are the node's dissemination counters, lock-free so the handlers'
// hot paths never serialise on a stats mutex and an observability scrape
// can read them live (internal/obs registers them on gds-server's
// /metrics endpoint).
type Metrics struct {
	// Deliveries counts inner envelopes handed to registered servers.
	Deliveries metrics.Counter
	// Broadcasts counts flood envelopes relayed through this node
	// (post-dedup).
	Broadcasts metrics.Counter
	// Multicasts counts group-multicast envelopes relayed (post-dedup).
	Multicasts metrics.Counter
	// ContentRouted counts digest-pruned content-routing envelopes relayed
	// (post-dedup, Flood unset).
	ContentRouted metrics.Counter
	// ContentFlooded counts content envelopes that took the flood fallback
	// (Flood set: warm-up or unwarm tables).
	ContentFlooded metrics.Counter
	// Resolves counts name-resolution requests served here.
	Resolves metrics.Counter
	// ResolvesDelegated counts resolutions escalated to the parent (subset
	// of Resolves).
	ResolvesDelegated metrics.Counter
}

// Metrics exposes the node's live counters.
func (n *Node) Metrics() *Metrics { return &n.m }

// NewNode creates a GDS node listening on addr at the given stratum.
func NewNode(id, addr string, stratum int, tr transport.Transport) (*Node, error) {
	if id == "" || addr == "" {
		return nil, fmt.Errorf("gds: node needs id and addr")
	}
	if stratum < 1 {
		return nil, fmt.Errorf("gds: stratum must be >= 1, got %d", stratum)
	}
	n := &Node{
		id:       id,
		addr:     addr,
		stratum:  stratum,
		tr:       tr,
		children: make(map[string]string),
		servers:  make(map[string]string),
		subtree:  make(map[string]string),
		groups:   make(map[string]map[string]member),
		digests:  make(map[string]profile.Digest),
		dedup:    event.NewDedup(0),
	}
	l, err := tr.Listen(addr, transport.HandlerFunc(n.handle))
	if err != nil {
		return nil, fmt.Errorf("gds: node %s listen: %w", id, err)
	}
	n.listener = l
	return n, nil
}

// SetDedupCapacity replaces the node's duplicate-suppression window with
// one holding the given number of message IDs. Call it right after NewNode,
// before traffic flows: previously observed IDs are forgotten. Larger
// windows cost ~100 B per remembered ID but tolerate longer broadcast echo
// delays; smaller windows risk relaying a duplicate whose original was
// already evicted (gds-server -dedup-capacity).
func (n *Node) SetDedupCapacity(capacity int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dedup = event.NewDedup(capacity)
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.id }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.addr }

// Stratum returns the node's stratum.
func (n *Node) Stratum() int { return n.stratum }

// SetLog installs the node's structured logger (docs/LOGGING.md): server
// registrations at info, content-routing flood fallbacks at debug. Call it
// right after NewNode, before traffic; a nil logger (the default) disables
// every site at one pointer check.
func (n *Node) SetLog(lg *logging.Logger) { n.log = lg }

// Close detaches the node from the transport.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	l := n.listener
	n.listener = nil
	n.mu.Unlock()
	if l != nil {
		return l.Close()
	}
	return nil
}

// AttachToParent registers this node as a child of the GDS node at
// parentAddr and re-propagates the local subtree's names upward.
func (n *Node) AttachToParent(ctx context.Context, parentID, parentAddr string) error {
	env, err := protocol.NewEnvelope(n.id, protocol.MsgRegisterChild, &protocol.RegisterChild{
		NodeID:  n.id,
		Addr:    n.addr,
		Stratum: n.stratum,
	})
	if err != nil {
		return err
	}
	if err := transport.SendOneWay(ctx, n.tr, parentAddr, env); err != nil {
		return fmt.Errorf("gds: attach %s to %s: %w", n.id, parentID, err)
	}
	n.mu.Lock()
	n.parentID = parentID
	n.parentAddr = parentAddr
	names := make(map[string]string, len(n.subtree))
	for name, addr := range n.subtree {
		names[name] = addr
	}
	groups := make(map[string]map[string]member, len(n.groups))
	for g, ms := range n.groups {
		cp := make(map[string]member, len(ms))
		for name, m := range ms {
			cp[name] = m
		}
		groups[g] = cp
	}
	n.mu.Unlock()

	// Re-propagate names and groups so the new ancestors learn them.
	for name, addr := range names {
		if err := n.propagateRegistration(ctx, name, addr); err != nil {
			return err
		}
	}
	for g, ms := range groups {
		for name, m := range ms {
			if err := n.propagateJoin(ctx, g, name, m.addr); err != nil {
				return err
			}
		}
	}
	// The new ancestors have no digest for this subtree yet; force a fresh
	// aggregate advertisement.
	n.mu.Lock()
	n.advertisedUp = false
	n.mu.Unlock()
	n.propagateDigest(ctx)
	return nil
}

// handle dispatches incoming protocol messages.
func (n *Node) handle(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	switch env.Header.Type {
	case protocol.MsgRegisterChild:
		return n.handleRegisterChild(env)
	case protocol.MsgRegisterServer:
		return n.handleRegisterServer(ctx, env)
	case protocol.MsgUnregisterServer:
		return n.handleUnregisterServer(ctx, env)
	case protocol.MsgResolve:
		return n.handleResolve(ctx, env)
	case protocol.MsgBroadcast:
		return n.handleBroadcast(ctx, env)
	case protocol.MsgMulticast:
		return n.handleMulticast(ctx, env)
	case protocol.MsgJoinGroup:
		return n.handleJoinGroup(ctx, env)
	case protocol.MsgLeaveGroup:
		return n.handleLeaveGroup(ctx, env)
	case protocol.MsgAdvertiseProfiles:
		return n.handleAdvertiseProfiles(ctx, env)
	case protocol.MsgUnadvertiseProfiles:
		return n.handleUnadvertiseProfiles(ctx, env)
	case protocol.MsgRouteContent:
		return n.handleRouteContent(ctx, env)
	case protocol.MsgPing:
		return protocol.Ack(n.id, env), nil
	default:
		return protocol.Errorf(n.id, "unsupported", "node %s cannot handle %s", n.id, env.Header.Type), nil
	}
}

func (n *Node) handleRegisterChild(env *protocol.Envelope) (*protocol.Envelope, error) {
	var rc protocol.RegisterChild
	if err := protocol.Decode(env, protocol.MsgRegisterChild, &rc); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	if rc.Stratum <= n.stratum {
		return protocol.Errorf(n.id, "stratum", "child stratum %d must exceed parent stratum %d", rc.Stratum, n.stratum), nil
	}
	n.mu.Lock()
	n.children[rc.NodeID] = rc.Addr
	n.mu.Unlock()
	// A fresh child is unwarm (match-all) until it advertises, which may
	// widen the aggregate this node advertised upward.
	n.propagateDigest(context.Background())
	return protocol.Ack(n.id, env), nil
}

func (n *Node) handleRegisterServer(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var rs protocol.RegisterServer
	if err := protocol.Decode(env, protocol.MsgRegisterServer, &rs); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	if rs.Name == "" || rs.Addr == "" {
		return protocol.Errorf(n.id, "register", "name and addr required"), nil
	}
	n.mu.Lock()
	// A server registers itself directly (From == its name); anything else
	// is a relayed registration from another directory node and must not be
	// recorded as a direct attachment.
	if env.Header.From == rs.Name {
		n.servers[rs.Name] = rs.Addr
	}
	// Idempotence guard: only propagate changes upward. Besides saving
	// traffic, this terminates propagation should a misconfigured directory
	// contain a cycle.
	old, existed := n.subtree[rs.Name]
	changed := !existed || old != rs.Addr
	n.subtree[rs.Name] = rs.Addr
	n.mu.Unlock()

	// A newly attached server is unwarm until it advertises a digest, which
	// may widen the content-routing aggregate.
	if env.Header.From == rs.Name {
		n.log.Info("server registered",
			logging.String("server", rs.Name), logging.String("addr", rs.Addr))
		n.propagateDigest(ctx)
	}
	if !changed {
		return protocol.Ack(n.id, env), nil
	}
	if err := n.propagateRegistration(ctx, rs.Name, rs.Addr); err != nil {
		// Best effort: the parent may be temporarily unreachable; local
		// registration still succeeded.
		return protocol.Ack(n.id, env), nil //nolint:nilerr // best-effort upward propagation
	}
	return protocol.Ack(n.id, env), nil
}

func (n *Node) propagateRegistration(ctx context.Context, name, addr string) error {
	n.mu.Lock()
	parentAddr := n.parentAddr
	n.mu.Unlock()
	if parentAddr == "" {
		return nil
	}
	env, err := protocol.NewEnvelope(n.id, protocol.MsgRegisterServer, &protocol.RegisterServer{Name: name, Addr: addr})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, n.tr, parentAddr, env)
}

func (n *Node) handleUnregisterServer(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var us protocol.UnregisterServer
	if err := protocol.Decode(env, protocol.MsgUnregisterServer, &us); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	n.mu.Lock()
	_, existed := n.subtree[us.Name]
	_, wasDirect := n.servers[us.Name]
	delete(n.servers, us.Name)
	delete(n.subtree, us.Name)
	if wasDirect {
		delete(n.digests, us.Name)
	}
	parentAddr := n.parentAddr
	n.mu.Unlock()
	if wasDirect {
		// The departed server's interests no longer hold the aggregate open.
		n.log.Info("server unregistered", logging.String("server", us.Name))
		n.propagateDigest(ctx)
	}
	if parentAddr != "" && existed {
		up, err := protocol.NewEnvelope(n.id, protocol.MsgUnregisterServer, &us)
		if err == nil {
			_ = transport.SendOneWay(ctx, n.tr, parentAddr, up) // best effort
		}
	}
	return protocol.Ack(n.id, env), nil
}

func (n *Node) handleResolve(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var r protocol.Resolve
	if err := protocol.Decode(env, protocol.MsgResolve, &r); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	n.m.Resolves.Inc()
	n.mu.Lock()
	addr, found := n.subtree[r.Name]
	parentAddr := n.parentAddr
	n.mu.Unlock()
	if found {
		return protocol.MustEnvelope(n.id, protocol.MsgResolveResult, &protocol.ResolveResult{
			Name: r.Name, Addr: addr, Found: true, Stratum: n.stratum,
		}), nil
	}
	if r.NoRecurse || parentAddr == "" {
		return protocol.MustEnvelope(n.id, protocol.MsgResolveResult, &protocol.ResolveResult{
			Name: r.Name, Found: false, Stratum: n.stratum,
		}), nil
	}
	// Delegate upwards: an ancestor knows every name in its larger subtree.
	n.m.ResolvesDelegated.Inc()
	up, err := protocol.NewEnvelope(n.id, protocol.MsgResolve, &r)
	if err != nil {
		return protocol.Errorf(n.id, "encode", "%v", err), nil
	}
	var rr protocol.ResolveResult
	if err := transport.SendExpect(ctx, n.tr, parentAddr, up, protocol.MsgResolveResult, &rr); err != nil {
		return protocol.Errorf(n.id, "delegate", "parent resolve failed: %v", err), nil
	}
	return protocol.MustEnvelope(n.id, protocol.MsgResolveResult, &rr), nil
}

// handleBroadcast floods the wrapped envelope to every server in the tree:
// it delivers to locally registered servers, then forwards up to the parent
// and down to every child except the link it arrived on (paper §4.1).
func (n *Node) handleBroadcast(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	hopStart := time.Now()
	if n.dedup.Observe(env.Header.ID) {
		return protocol.Ack(n.id, env), nil
	}
	var bc protocol.Broadcast
	if err := protocol.Decode(env, protocol.MsgBroadcast, &bc); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	inner, err := protocol.Unmarshal(bc.Inner)
	if err != nil {
		return protocol.Errorf(n.id, "inner", "%v", err), nil
	}
	n.m.Broadcasts.Inc()

	n.mu.Lock()
	from := env.Header.From
	targets := make([]string, 0, len(n.servers))
	for name, addr := range n.servers {
		if name == from {
			continue // do not echo to the originating server
		}
		targets = append(targets, addr)
	}
	relays := make([]string, 0, len(n.children)+1)
	if n.parentAddr != "" && from != n.parentID {
		relays = append(relays, n.parentAddr)
	}
	for childID, childAddr := range n.children {
		if childID == from {
			continue
		}
		relays = append(relays, childAddr)
	}
	n.mu.Unlock()
	// Fan-out order must not depend on map iteration: simulations replay
	// seeds expecting identical event interleavings (E19's byte-identical
	// flight bundles), and the slices are a handful of addresses per hop.
	sort.Strings(targets)
	sort.Strings(relays)

	hopCtx := n.hopSpan(env, hopStart, "broadcast")

	// Deliver to local servers: the inner envelope inherits the broadcast's
	// accumulated virtual latency and hop count for measurement.
	for _, addr := range targets {
		delivery := inner.Clone()
		delivery.Header.VirtualLatencyMicros = env.Header.VirtualLatencyMicros
		delivery.Header.Hops = env.Header.Hops
		delivery.Header.From = n.id
		if hopCtx != "" {
			delivery.Header.Trace = hopCtx
		}
		_ = transport.SendOneWay(ctx, n.tr, addr, delivery) // best effort
		n.m.Deliveries.Inc()
	}
	// Relay through the tree.
	if env.Forwardable() {
		for _, addr := range relays {
			fwd := env.NextHop()
			fwd.Header.From = n.id
			if hopCtx != "" {
				fwd.Header.Trace = hopCtx
			}
			_ = transport.SendOneWay(ctx, n.tr, addr, fwd) // best effort
		}
	}
	return protocol.Ack(n.id, env), nil
}

func (n *Node) handleJoinGroup(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var jg protocol.JoinGroup
	if err := protocol.Decode(env, protocol.MsgJoinGroup, &jg); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	if jg.Group == "" || jg.Name == "" {
		return protocol.Errorf(n.id, "join", "group and name required"), nil
	}
	n.mu.Lock()
	// As with registrations, a join is direct only when the member itself
	// sent it; relayed joins record the relaying node so multicasts can
	// descend into the right subtree.
	viaChild := ""
	if env.Header.From != jg.Name {
		viaChild = env.Header.From
	}
	ms := n.groups[jg.Group]
	if ms == nil {
		ms = make(map[string]member)
		n.groups[jg.Group] = ms
	}
	old, existed := ms[jg.Name]
	changed := !existed || old.addr != jg.Addr
	ms[jg.Name] = member{addr: jg.Addr, viaChild: viaChild}
	n.mu.Unlock()

	if !changed {
		return protocol.Ack(n.id, env), nil
	}
	if err := n.propagateJoin(ctx, jg.Group, jg.Name, jg.Addr); err != nil {
		return protocol.Ack(n.id, env), nil //nolint:nilerr // best-effort upward propagation
	}
	return protocol.Ack(n.id, env), nil
}

func (n *Node) propagateJoin(ctx context.Context, group, name, addr string) error {
	n.mu.Lock()
	parentAddr := n.parentAddr
	n.mu.Unlock()
	if parentAddr == "" {
		return nil
	}
	env, err := protocol.NewEnvelope(n.id, protocol.MsgJoinGroup, &protocol.JoinGroup{Group: group, Name: name, Addr: addr})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, n.tr, parentAddr, env)
}

func (n *Node) handleLeaveGroup(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	var lg protocol.LeaveGroup
	if err := protocol.Decode(env, protocol.MsgLeaveGroup, &lg); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	n.mu.Lock()
	existed := false
	if ms := n.groups[lg.Group]; ms != nil {
		_, existed = ms[lg.Name]
		delete(ms, lg.Name)
		if len(ms) == 0 {
			delete(n.groups, lg.Group)
		}
	}
	parentAddr := n.parentAddr
	n.mu.Unlock()
	if parentAddr != "" && existed {
		up, err := protocol.NewEnvelope(n.id, protocol.MsgLeaveGroup, &lg)
		if err == nil {
			_ = transport.SendOneWay(ctx, n.tr, parentAddr, up) // best effort
		}
	}
	return protocol.Ack(n.id, env), nil
}

// handleMulticast delivers the wrapped envelope to group members: directly
// registered members receive it here; the message descends only into child
// subtrees that reported membership and otherwise climbs towards the root.
func (n *Node) handleMulticast(ctx context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
	hopStart := time.Now()
	if n.dedup.Observe(env.Header.ID) {
		return protocol.Ack(n.id, env), nil
	}
	var mc protocol.Multicast
	if err := protocol.Decode(env, protocol.MsgMulticast, &mc); err != nil {
		return protocol.Errorf(n.id, "decode", "%v", err), nil
	}
	inner, err := protocol.Unmarshal(mc.Inner)
	if err != nil {
		return protocol.Errorf(n.id, "inner", "%v", err), nil
	}
	n.m.Multicasts.Inc()

	n.mu.Lock()
	from := env.Header.From
	var direct []string
	childTargets := make(map[string]string) // childID -> addr
	for name, m := range n.groups[mc.Group] {
		if m.viaChild == "" {
			if name != from {
				direct = append(direct, m.addr)
			}
			continue
		}
		if m.viaChild != from {
			childTargets[m.viaChild] = n.children[m.viaChild]
		}
	}
	var parentAddr string
	if n.parentAddr != "" && from != n.parentID {
		parentAddr = n.parentAddr
	}
	n.mu.Unlock()
	// Deterministic fan-out, as in handleBroadcast.
	sort.Strings(direct)
	childAddrs := make([]string, 0, len(childTargets))
	for _, addr := range childTargets {
		if addr != "" {
			childAddrs = append(childAddrs, addr)
		}
	}
	sort.Strings(childAddrs)

	hopCtx := n.hopSpan(env, hopStart, "multicast")

	for _, addr := range direct {
		delivery := inner.Clone()
		delivery.Header.VirtualLatencyMicros = env.Header.VirtualLatencyMicros
		delivery.Header.Hops = env.Header.Hops
		delivery.Header.From = n.id
		if hopCtx != "" {
			delivery.Header.Trace = hopCtx
		}
		_ = transport.SendOneWay(ctx, n.tr, addr, delivery) // best effort
		n.m.Deliveries.Inc()
	}
	if env.Forwardable() {
		if parentAddr != "" {
			fwd := env.NextHop()
			fwd.Header.From = n.id
			if hopCtx != "" {
				fwd.Header.Trace = hopCtx
			}
			_ = transport.SendOneWay(ctx, n.tr, parentAddr, fwd) // best effort
		}
		for _, addr := range childAddrs {
			fwd := env.NextHop()
			fwd.Header.From = n.id
			if hopCtx != "" {
				fwd.Header.Trace = hopCtx
			}
			_ = transport.SendOneWay(ctx, n.tr, addr, fwd) // best effort
		}
	}
	return protocol.Ack(n.id, env), nil
}

// Info describes a node's current state for tooling and tests.
type Info struct {
	ID       string
	Stratum  int
	ParentID string
	Children []string
	Servers  []string
	Subtree  []string
	Groups   map[string][]string
	// Digests is the content-routing table: tree link -> advertised digest
	// conjunctions. Links missing from the map are unwarm (match-all).
	Digests map[string][]string
	// Advertised is the canonical aggregate digest last advertised to the
	// parent ("" when nothing was advertised yet).
	Advertised string
	Deliveries int64
	DedupHits  int64
}

// Snapshot returns a copy of the node's state.
func (n *Node) Snapshot() Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	info := Info{
		ID:         n.id,
		Stratum:    n.stratum,
		ParentID:   n.parentID,
		Deliveries: n.m.Deliveries.Value(),
		DedupHits:  n.dedup.Hits(),
		Groups:     make(map[string][]string, len(n.groups)),
		Digests:    make(map[string][]string, len(n.digests)),
		Advertised: n.advertised,
	}
	for link, d := range n.digests {
		info.Digests[link] = d.Strings()
	}
	for c := range n.children {
		info.Children = append(info.Children, c)
	}
	for s := range n.servers {
		info.Servers = append(info.Servers, s)
	}
	for s := range n.subtree {
		info.Subtree = append(info.Subtree, s)
	}
	for g, ms := range n.groups {
		for name := range ms {
			info.Groups[g] = append(info.Groups[g], name)
		}
		sort.Strings(info.Groups[g])
	}
	sort.Strings(info.Children)
	sort.Strings(info.Servers)
	sort.Strings(info.Subtree)
	return info
}
