package gds

import (
	"context"
	"testing"

	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

func digest(t *testing.T, src string) profile.Digest {
	t.Helper()
	if src == "" {
		return profile.Digest{}
	}
	return profile.DigestOf(profile.MustParse(src))
}

// contentTree registers four servers across the Figure-2 tree and puts
// every link into the warmed state with the given digests ("" = empty
// digest, i.e. no interests).
func contentTree(t *testing.T, tr *transport.Memory, digests map[string]string) (map[string]*Node, map[string]*recorder, map[string]*Client) {
	t.Helper()
	nodes := buildTestTree(t, tr)
	ctx := context.Background()
	placement := map[string]string{ // server -> gds node addr
		"Hamilton": "addr:n5",
		"London":   "addr:n7",
		"Berlin":   "addr:n6",
		"Tokyo":    "addr:n3",
	}
	recorders := make(map[string]*recorder, len(placement))
	clients := make(map[string]*Client, len(placement))
	for name, nodeAddr := range placement {
		recorders[name] = newRecorder(t, tr, name, "addr:"+name)
		clients[name] = NewClient(name, "addr:"+name, nodeAddr, tr)
		if err := clients[name].Register(ctx); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		if src, ok := digests[name]; ok {
			if err := clients[name].AdvertiseProfiles(ctx, digest(t, src)); err != nil {
				t.Fatalf("advertise %s: %v", name, err)
			}
		}
	}
	return nodes, recorders, clients
}

func routeEvent(t *testing.T, c *Client, attrs map[string]string, flood bool) {
	t.Helper()
	inner := protocol.MustEnvelope("Hamilton", protocol.MsgEvent,
		&protocol.EventPayload{Event: protocol.Wrap([]byte("<AlertEvent/>"))})
	if err := c.RouteContent(context.Background(), attrs, inner, flood); err != nil {
		t.Fatal(err)
	}
}

var hamiltonRebuilt = map[string]string{
	"collection": "hamilton.d",
	"event.type": "collection-rebuilt",
	"host":       "hamilton",
}

func TestContentRoutingDeliversByDigest(t *testing.T) {
	tr := transport.NewMemory(7)
	nodes, recorders, clients := contentTree(t, tr, map[string]string{
		"Hamilton": "",
		"London":   `collection = "Hamilton.D"`,
		"Berlin":   "", // explicitly no interests
		"Tokyo":    `collection = "Other.X" AND event.type = "collection-rebuilt"`,
	})

	routeEvent(t, clients["Hamilton"], hamiltonRebuilt, false)

	if got := recorders["London"].count(); got != 1 {
		t.Errorf("London (interested) received %d, want 1", got)
	}
	for _, name := range []string{"Hamilton", "Berlin", "Tokyo"} {
		if got := recorders[name].count(); got != 0 {
			t.Errorf("%s received %d, want 0", name, got)
		}
	}
	// The delivered envelope is the inner event, as with broadcast.
	if env := recorders["London"].last(); env.Header.Type != protocol.MsgEvent {
		t.Errorf("delivered type = %s", env.Header.Type)
	}

	// The routing tables converged: the root holds one digest per child
	// link, and only the n4 branch (towards London) matches.
	root := nodes["n1"].Snapshot()
	for _, child := range []string{"n2", "n3", "n4"} {
		if _, ok := root.Digests[child]; !ok {
			t.Fatalf("root has no digest for child %s: %v", child, root.Digests)
		}
	}
	if len(root.Digests["n2"]) != 0 { // Hamilton ∅ + Berlin ∅
		t.Errorf("root digest for n2 = %v, want empty", root.Digests["n2"])
	}
	if len(root.Digests["n4"]) == 0 {
		t.Errorf("root digest for n4 is empty, want London's interest")
	}

	// An event matching nobody climbs to the root but descends nowhere.
	tr.ResetStats()
	routeEvent(t, clients["Hamilton"], map[string]string{
		"collection": "nowhere.z", "event.type": "documents-added",
	}, false)
	for name, r := range recorders {
		want := 0
		if name == "London" {
			want = 1 // still only the earlier delivery
		}
		if got := r.count(); got != want {
			t.Errorf("%s received %d after no-match publish, want %d", name, got, want)
		}
	}
	// Climb-only: n5 -> n2 -> n1, no descent, no deliveries.
	if sent := tr.Stats().PerType[protocol.MsgRouteContent]; sent != 3 {
		t.Errorf("no-match publish used %d RouteContent hops, want 3 (climb only)", sent)
	}
}

func TestContentRoutingUnwarmLinkFloods(t *testing.T) {
	tr := transport.NewMemory(8)
	// Berlin never advertises: its link (and every aggregate above it)
	// stays match-all, so it keeps receiving everything.
	_, recorders, clients := contentTree(t, tr, map[string]string{
		"Hamilton": "",
		"London":   `collection = "Hamilton.D"`,
		"Tokyo":    "",
	})
	routeEvent(t, clients["Hamilton"], hamiltonRebuilt, false)
	if got := recorders["Berlin"].count(); got != 1 {
		t.Errorf("unwarmed Berlin received %d, want 1 (match-all fallback)", got)
	}
	if got := recorders["London"].count(); got != 1 {
		t.Errorf("London received %d, want 1", got)
	}
	if got := recorders["Tokyo"].count(); got != 0 {
		t.Errorf("Tokyo advertised no interests but received %d", got)
	}
}

func TestContentRoutingFloodFallbackFlag(t *testing.T) {
	tr := transport.NewMemory(9)
	_, recorders, clients := contentTree(t, tr, map[string]string{
		"Hamilton": "", "London": "", "Berlin": "", "Tokyo": "",
	})
	// Every digest is empty, but the publisher has not warmed up yet and
	// forces the flood path: everyone except the origin receives.
	routeEvent(t, clients["Hamilton"], hamiltonRebuilt, true)
	for name, r := range recorders {
		want := 1
		if name == "Hamilton" {
			want = 0
		}
		if got := r.count(); got != want {
			t.Errorf("%s received %d under flood fallback, want %d", name, got, want)
		}
	}
}

func TestAdvertisementCoveringPrune(t *testing.T) {
	tr := transport.NewMemory(10)
	nodes, _, _ := contentTree(t, tr, map[string]string{
		"Hamilton": "", "London": `collection = "Hamilton.D"`, "Berlin": "", "Tokyo": "",
	})
	ctx := context.Background()

	// A second server joins at n7 and initially advertises the same
	// interest as London, settling the tables.
	newRecorder(t, tr, "Paris", "addr:Paris")
	paris := NewClient("Paris", "addr:Paris", "addr:n7", tr)
	if err := paris.Register(ctx); err != nil {
		t.Fatal(err)
	}
	if err := paris.AdvertiseProfiles(ctx, digest(t, `collection = "Hamilton.D"`)); err != nil {
		t.Fatal(err)
	}
	before := nodes["n1"].Snapshot().Digests["n4"]

	// Paris narrows to a digest covered by London's: n7's pruned aggregate
	// is unchanged, so the advertisement travels exactly one hop and stops.
	tr.ResetStats()
	if err := paris.AdvertiseProfiles(ctx,
		digest(t, `collection = "Hamilton.D" AND event.type = "collection-rebuilt"`)); err != nil {
		t.Fatal(err)
	}
	if sent := tr.Stats().PerType[protocol.MsgAdvertiseProfiles]; sent != 1 {
		t.Errorf("covered advertisement triggered %d AdvertiseProfiles messages, want 1 (Paris->n7 only)", sent)
	}
	after := nodes["n1"].Snapshot().Digests["n4"]
	if len(before) != 1 || len(after) != 1 || before[0] != after[0] {
		t.Errorf("root digest for n4 changed by covered advertisement: %v -> %v", before, after)
	}
	// But the change is recorded locally at n7 for precise descent.
	if got := nodes["n7"].Snapshot().Digests["Paris"]; len(got) != 1 ||
		got[0] != `collection = "Hamilton.D" AND event.type = "collection-rebuilt"` {
		t.Errorf("n7 digest for Paris = %v", got)
	}
}

func TestContentTableConvergesAfterCancel(t *testing.T) {
	tr := transport.NewMemory(11)
	nodes, recorders, clients := contentTree(t, tr, map[string]string{
		"Hamilton": "", "London": `collection = "Hamilton.D"`, "Berlin": "", "Tokyo": "",
	})
	ctx := context.Background()

	routeEvent(t, clients["Hamilton"], hamiltonRebuilt, false)
	if got := recorders["London"].count(); got != 1 {
		t.Fatalf("London received %d before cancel, want 1", got)
	}

	// London cancels its last profile: the empty digest replaces the old
	// one on every link up to the root.
	if err := clients["London"].AdvertiseProfiles(ctx, profile.Digest{}); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct{ node, link string }{
		{"n7", "London"}, {"n4", "n7"}, {"n1", "n4"},
	} {
		snap := nodes[probe.node].Snapshot()
		d, ok := snap.Digests[probe.link]
		if !ok {
			t.Fatalf("%s lost the digest for link %s entirely", probe.node, probe.link)
		}
		if len(d) != 0 {
			t.Errorf("%s digest for link %s = %v, want empty after cancel", probe.node, probe.link, d)
		}
	}

	// Subsequent publishes no longer descend to London.
	routeEvent(t, clients["Hamilton"], hamiltonRebuilt, false)
	if got := recorders["London"].count(); got != 1 {
		t.Errorf("London received %d after cancel, want still 1", got)
	}

	// Withdrawing instead of cancelling returns the link to match-all.
	if err := clients["London"].UnadvertiseProfiles(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := nodes["n7"].Snapshot().Digests["London"]; ok {
		t.Error("unadvertise left a digest behind")
	}
	routeEvent(t, clients["Hamilton"], map[string]string{
		"collection": "anything.a", "event.type": "documents-added",
	}, false)
	if got := recorders["London"].count(); got != 2 {
		t.Errorf("London received %d after unadvertise, want 2 (match-all again)", got)
	}
}
