package gds

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

// ErrNameNotFound reports a failed resolution.
var ErrNameNotFound = errors.New("gds: name not found")

// Client is a Greenstone server's handle on its GDS node (paper §4.1: "each
// server is registered at exactly one service installation"). It offers
// registration, the naming service (with a small TTL cache), broadcast and
// multicast.
type Client struct {
	serverName string
	serverAddr string
	nodeAddr   string
	tr         transport.Transport

	mu    sync.Mutex
	cache map[string]cacheEntry
	ttl   time.Duration
	now   func() time.Time
}

type cacheEntry struct {
	addr    string
	expires time.Time
}

// DefaultResolveTTL bounds staleness of cached name resolutions.
const DefaultResolveTTL = 30 * time.Second

// NewClient builds a client for the server (name, addr) attached to the GDS
// node at nodeAddr.
func NewClient(serverName, serverAddr, nodeAddr string, tr transport.Transport) *Client {
	return &Client{
		serverName: serverName,
		serverAddr: serverAddr,
		nodeAddr:   nodeAddr,
		tr:         tr,
		cache:      make(map[string]cacheEntry),
		ttl:        DefaultResolveTTL,
		now:        time.Now,
	}
}

// NodeAddr reports the GDS node this client is attached to.
func (c *Client) NodeAddr() string { return c.nodeAddr }

// Register announces the server to its GDS node.
func (c *Client) Register(ctx context.Context) error {
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgRegisterServer, &protocol.RegisterServer{
		Name: c.serverName,
		Addr: c.serverAddr,
	})
	if err != nil {
		return err
	}
	if err := transport.SendOneWay(ctx, c.tr, c.nodeAddr, env); err != nil {
		return fmt.Errorf("gds: register %s: %w", c.serverName, err)
	}
	return nil
}

// Unregister withdraws the server's registration.
func (c *Client) Unregister(ctx context.Context) error {
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgUnregisterServer, &protocol.UnregisterServer{
		Name: c.serverName,
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}

// Resolve maps a server name to its transport address via the directory,
// consulting the local cache first (paper §4.1: servers are addressed "by
// their network-internal name without ... the actual address or location").
func (c *Client) Resolve(ctx context.Context, name string) (string, error) {
	c.mu.Lock()
	if e, ok := c.cache[name]; ok && c.now().Before(e.expires) {
		c.mu.Unlock()
		return e.addr, nil
	}
	c.mu.Unlock()

	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgResolve, &protocol.Resolve{Name: name})
	if err != nil {
		return "", err
	}
	var rr protocol.ResolveResult
	if err := transport.SendExpect(ctx, c.tr, c.nodeAddr, env, protocol.MsgResolveResult, &rr); err != nil {
		return "", fmt.Errorf("gds: resolve %q: %w", name, err)
	}
	if !rr.Found {
		return "", fmt.Errorf("%w: %q", ErrNameNotFound, name)
	}
	c.mu.Lock()
	c.cache[name] = cacheEntry{addr: rr.Addr, expires: c.now().Add(c.ttl)}
	c.mu.Unlock()
	return rr.Addr, nil
}

// InvalidateCache drops a cached resolution (after a send to the cached
// address failed).
func (c *Client) InvalidateCache(name string) {
	c.mu.Lock()
	delete(c.cache, name)
	c.mu.Unlock()
}

// SetResolveTTL adjusts cache lifetime (0 disables caching).
func (c *Client) SetResolveTTL(d time.Duration) {
	c.mu.Lock()
	c.ttl = d
	c.mu.Unlock()
}

// Broadcast floods inner to every Greenstone server registered in the GDS
// tree. Delivery is best effort.
func (c *Client) Broadcast(ctx context.Context, inner *protocol.Envelope) error {
	raw, err := protocol.Marshal(inner)
	if err != nil {
		return err
	}
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgBroadcast, &protocol.Broadcast{Inner: raw})
	if err != nil {
		return err
	}
	// Mirror the inner envelope's trace context on the outer header so
	// directory nodes can record per-hop spans without unwrapping Inner.
	env.Header.Trace = inner.Header.Trace
	if err := transport.SendOneWay(ctx, c.tr, c.nodeAddr, env); err != nil {
		return fmt.Errorf("gds: broadcast from %s: %w", c.serverName, err)
	}
	return nil
}

// JoinGroup subscribes the server to a multicast group.
func (c *Client) JoinGroup(ctx context.Context, group string) error {
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgJoinGroup, &protocol.JoinGroup{
		Group: group,
		Name:  c.serverName,
		Addr:  c.serverAddr,
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}

// LeaveGroup removes the server from a multicast group.
func (c *Client) LeaveGroup(ctx context.Context, group string) error {
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgLeaveGroup, &protocol.LeaveGroup{
		Group: group,
		Name:  c.serverName,
	})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}

// Multicast delivers inner to the members of a group.
func (c *Client) Multicast(ctx context.Context, group string, inner *protocol.Envelope) error {
	raw, err := protocol.Marshal(inner)
	if err != nil {
		return err
	}
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgMulticast, &protocol.Multicast{Group: group, Inner: raw})
	if err != nil {
		return err
	}
	env.Header.Trace = inner.Header.Trace
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}

// Ping probes the node.
func (c *Client) Ping(ctx context.Context) error {
	env, err := protocol.NewEnvelope(c.serverName, protocol.MsgPing, &protocol.Ping{Seq: 1})
	if err != nil {
		return err
	}
	return transport.SendOneWay(ctx, c.tr, c.nodeAddr, env)
}
