package gds

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/transport"
)

// recorder is a fake Greenstone server that records delivered envelopes.
type recorder struct {
	mu   sync.Mutex
	got  []*protocol.Envelope
	name string
}

func newRecorder(t *testing.T, tr transport.Transport, name, addr string) *recorder {
	t.Helper()
	r := &recorder{name: name}
	_, err := tr.Listen(addr, transport.HandlerFunc(func(_ context.Context, env *protocol.Envelope) (*protocol.Envelope, error) {
		r.mu.Lock()
		r.got = append(r.got, env)
		r.mu.Unlock()
		return nil, nil
	}))
	if err != nil {
		t.Fatalf("listen %s: %v", name, err)
	}
	return r
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func (r *recorder) last() *protocol.Envelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.got) == 0 {
		return nil
	}
	return r.got[len(r.got)-1]
}

// buildTestTree creates the paper's Figure 2 shape: one stratum-1 root, two
// stratum-2 nodes, three stratum-3 leaves, seven nodes total in a tree:
//
//	       n1 (s1)
//	     /    |    \
//	  n2(s2) n3(s2) n4(s2)
//	  /  \        \
//	n5    n6       n7   (s3)
func buildTestTree(t *testing.T, tr transport.Transport) map[string]*Node {
	t.Helper()
	ctx := context.Background()
	mk := func(id string, stratum int) *Node {
		n, err := NewNode(id, "addr:"+id, stratum, tr)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		t.Cleanup(func() { _ = n.Close() })
		return n
	}
	nodes := map[string]*Node{
		"n1": mk("n1", 1),
		"n2": mk("n2", 2),
		"n3": mk("n3", 2),
		"n4": mk("n4", 2),
		"n5": mk("n5", 3),
		"n6": mk("n6", 3),
		"n7": mk("n7", 3),
	}
	attach := func(child, parent string) {
		if err := nodes[child].AttachToParent(ctx, parent, "addr:"+parent); err != nil {
			t.Fatalf("attach %s->%s: %v", child, parent, err)
		}
	}
	attach("n2", "n1")
	attach("n3", "n1")
	attach("n4", "n1")
	attach("n5", "n2")
	attach("n6", "n2")
	attach("n7", "n4")
	return nodes
}

func TestNodeValidation(t *testing.T) {
	tr := transport.NewMemory(1)
	if _, err := NewNode("", "a", 1, tr); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := NewNode("x", "", 1, tr); err == nil {
		t.Error("empty addr accepted")
	}
	if _, err := NewNode("x", "a", 0, tr); err == nil {
		t.Error("stratum 0 accepted")
	}
}

func TestChildStratumMustExceedParent(t *testing.T) {
	tr := transport.NewMemory(1)
	ctx := context.Background()
	p, _ := NewNode("p", "addr:p", 2, tr)
	defer func() { _ = p.Close() }()
	c, _ := NewNode("c", "addr:c", 2, tr)
	defer func() { _ = c.Close() }()
	if err := c.AttachToParent(ctx, "p", "addr:p"); err == nil {
		t.Error("equal stratum attach accepted")
	}
}

func TestRegisterAndResolveThroughTree(t *testing.T) {
	tr := transport.NewMemory(1)
	nodes := buildTestTree(t, tr)
	ctx := context.Background()

	// Hamilton registers at leaf n5, London at leaf n7 (different branches).
	newRecorder(t, tr, "Hamilton", "addr:Hamilton")
	newRecorder(t, tr, "London", "addr:London")
	ham := NewClient("Hamilton", "addr:Hamilton", "addr:n5", tr)
	lon := NewClient("London", "addr:London", "addr:n7", tr)
	if err := ham.Register(ctx); err != nil {
		t.Fatal(err)
	}
	if err := lon.Register(ctx); err != nil {
		t.Fatal(err)
	}

	// Registration propagated to every ancestor.
	for _, id := range []string{"n5", "n2", "n1"} {
		info := nodes[id].Snapshot()
		if len(info.Subtree) == 0 || !contains(info.Subtree, "Hamilton") {
			t.Errorf("node %s subtree missing Hamilton: %v", id, info.Subtree)
		}
	}
	// n3 is on another branch and must NOT know Hamilton locally.
	if contains(nodes["n3"].Snapshot().Subtree, "Hamilton") {
		t.Error("n3 learned Hamilton without being an ancestor")
	}

	// Cross-branch resolution climbs to the root.
	addr, err := ham.Resolve(ctx, "London")
	if err != nil {
		t.Fatalf("Resolve(London): %v", err)
	}
	if addr != "addr:London" {
		t.Errorf("addr = %q", addr)
	}
	// Unknown names fail cleanly at the root.
	if _, err := ham.Resolve(ctx, "Nowhere"); !errors.Is(err, ErrNameNotFound) {
		t.Errorf("err = %v, want ErrNameNotFound", err)
	}
}

func TestResolveCache(t *testing.T) {
	tr := transport.NewMemory(1)
	buildTestTree(t, tr)
	ctx := context.Background()
	newRecorder(t, tr, "Hamilton", "addr:Hamilton")
	newRecorder(t, tr, "London", "addr:London")
	ham := NewClient("Hamilton", "addr:Hamilton", "addr:n5", tr)
	lon := NewClient("London", "addr:London", "addr:n7", tr)
	_ = ham.Register(ctx)
	_ = lon.Register(ctx)

	if _, err := ham.Resolve(ctx, "London"); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats().PerType[protocol.MsgResolve]
	for i := 0; i < 5; i++ {
		if _, err := ham.Resolve(ctx, "London"); err != nil {
			t.Fatal(err)
		}
	}
	after := tr.Stats().PerType[protocol.MsgResolve]
	if after != before {
		t.Errorf("cache miss: %d resolve messages for cached name", after-before)
	}
	ham.InvalidateCache("London")
	if _, err := ham.Resolve(ctx, "London"); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().PerType[protocol.MsgResolve] == after {
		t.Error("invalidated cache did not re-resolve")
	}
}

func TestBroadcastReachesAllServers(t *testing.T) {
	tr := transport.NewMemory(1)
	nodes := buildTestTree(t, tr)
	ctx := context.Background()

	// One server per leaf and one at the root's n3 (stratum 2).
	servers := map[string]string{ // name -> gds node addr
		"Hamilton": "addr:n5",
		"London":   "addr:n7",
		"Berlin":   "addr:n6",
		"Tokyo":    "addr:n3",
	}
	recorders := make(map[string]*recorder, len(servers))
	clients := make(map[string]*Client, len(servers))
	for name, nodeAddr := range servers {
		recorders[name] = newRecorder(t, tr, name, "addr:"+name)
		clients[name] = NewClient(name, "addr:"+name, nodeAddr, tr)
		if err := clients[name].Register(ctx); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}

	inner := protocol.MustEnvelope("Hamilton", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<AlertEvent/>"))})
	if err := clients["Hamilton"].Broadcast(ctx, inner); err != nil {
		t.Fatal(err)
	}

	// Everybody except the origin receives exactly one copy.
	for name, r := range recorders {
		want := 1
		if name == "Hamilton" {
			want = 0
		}
		if got := r.count(); got != want {
			t.Errorf("%s received %d, want %d", name, got, want)
		}
	}
	// Delivered envelope is the inner event with hop metadata.
	env := recorders["London"].last()
	if env.Header.Type != protocol.MsgEvent {
		t.Errorf("delivered type = %s", env.Header.Type)
	}
	if env.Header.Hops == 0 {
		t.Error("hop count not propagated")
	}
	// No duplicate deliveries even though the tree fans out: dedup hits
	// remain zero because a tree has no cycles.
	for id, n := range nodes {
		if hits := n.Snapshot().DedupHits; hits != 0 {
			t.Errorf("node %s dedup hits = %d on a tree", id, hits)
		}
	}
}

func TestBroadcastFromMidTreeServer(t *testing.T) {
	tr := transport.NewMemory(1)
	buildTestTree(t, tr)
	ctx := context.Background()
	recorders := map[string]*recorder{}
	for name, nodeAddr := range map[string]string{"A": "addr:n3", "B": "addr:n5", "C": "addr:n7"} {
		recorders[name] = newRecorder(t, tr, name, "addr:"+name)
		cl := NewClient(name, "addr:"+name, nodeAddr, tr)
		if err := cl.Register(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Broadcast from A at stratum-2 node n3: must go up to n1 and down into
	// both other branches.
	cl := NewClient("A", "addr:A", "addr:n3", tr)
	inner := protocol.MustEnvelope("A", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<AlertEvent/>"))})
	if err := cl.Broadcast(ctx, inner); err != nil {
		t.Fatal(err)
	}
	if recorders["B"].count() != 1 || recorders["C"].count() != 1 {
		t.Errorf("B=%d C=%d, want 1 each", recorders["B"].count(), recorders["C"].count())
	}
	if recorders["A"].count() != 0 {
		t.Errorf("origin got echoed %d times", recorders["A"].count())
	}
}

func TestBroadcastDedupWithCycle(t *testing.T) {
	// Deliberately create a cycle: n1 -> n2 -> n3 -> n1 (misconfigured
	// directory). Dedup must stop infinite relaying and servers must see
	// exactly one copy.
	tr := transport.NewMemory(1)
	ctx := context.Background()
	n1, _ := NewNode("n1", "addr:n1", 1, tr)
	n2, _ := NewNode("n2", "addr:n2", 2, tr)
	n3, _ := NewNode("n3", "addr:n3", 3, tr)
	defer func() { _ = n1.Close(); _ = n2.Close(); _ = n3.Close() }()
	if err := n2.AttachToParent(ctx, "n1", "addr:n1"); err != nil {
		t.Fatal(err)
	}
	if err := n3.AttachToParent(ctx, "n2", "addr:n2"); err != nil {
		t.Fatal(err)
	}
	// The cycle: n1 believes n3 is its parent.
	n1.mu.Lock()
	n1.parentID = "n3"
	n1.parentAddr = "addr:n3"
	n1.mu.Unlock()

	r := newRecorder(t, tr, "S", "addr:S")
	cl := NewClient("S", "addr:S", "addr:n1", tr)
	if err := cl.Register(ctx); err != nil {
		t.Fatal(err)
	}
	inner := protocol.MustEnvelope("S", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<AlertEvent/>"))})
	if err := cl.Broadcast(ctx, inner); err != nil {
		t.Fatal(err)
	}
	if r.count() != 0 { // origin is never echoed
		t.Errorf("origin echoed %d", r.count())
	}
	hits := n1.Snapshot().DedupHits + n2.Snapshot().DedupHits + n3.Snapshot().DedupHits
	if hits == 0 {
		t.Error("cycle produced no dedup hits — did the message loop?")
	}
}

func TestBroadcastBestEffortUnderNodeFailure(t *testing.T) {
	tr := transport.NewMemory(1)
	buildTestTree(t, tr)
	ctx := context.Background()
	recB := newRecorder(t, tr, "B", "addr:B")
	recC := newRecorder(t, tr, "C", "addr:C")
	for name, nodeAddr := range map[string]string{"B": "addr:n6", "C": "addr:n7"} {
		cl := NewClient(name, "addr:"+name, nodeAddr, tr)
		if err := cl.Register(ctx); err != nil {
			t.Fatal(err)
		}
	}
	newRecorder(t, tr, "A", "addr:A")
	clA := NewClient("A", "addr:A", "addr:n5", tr)
	if err := clA.Register(ctx); err != nil {
		t.Fatal(err)
	}
	// Take down n4 (London's branch): C becomes unreachable, B still gets it.
	tr.SetNodeDown("addr:n4", true)
	inner := protocol.MustEnvelope("A", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<AlertEvent/>"))})
	if err := clA.Broadcast(ctx, inner); err != nil {
		t.Fatal(err)
	}
	if recB.count() != 1 {
		t.Errorf("B = %d, want 1", recB.count())
	}
	if recC.count() != 0 {
		t.Errorf("C = %d, want 0 while its branch is down", recC.count())
	}
}

func TestUnregisterRemovesName(t *testing.T) {
	tr := transport.NewMemory(1)
	nodes := buildTestTree(t, tr)
	ctx := context.Background()
	newRecorder(t, tr, "S", "addr:S")
	cl := NewClient("S", "addr:S", "addr:n5", tr)
	_ = cl.Register(ctx)
	if !contains(nodes["n1"].Snapshot().Subtree, "S") {
		t.Fatal("registration did not reach root")
	}
	if err := cl.Unregister(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"n5", "n2", "n1"} {
		if contains(nodes[id].Snapshot().Subtree, "S") {
			t.Errorf("node %s still knows S after unregister", id)
		}
	}
	cl.InvalidateCache("S")
	if _, err := cl.Resolve(ctx, "S"); !errors.Is(err, ErrNameNotFound) {
		t.Errorf("resolve after unregister: %v", err)
	}
}

func TestMulticastOnlyMembers(t *testing.T) {
	tr := transport.NewMemory(1)
	buildTestTree(t, tr)
	ctx := context.Background()
	recs := map[string]*recorder{}
	cls := map[string]*Client{}
	for name, nodeAddr := range map[string]string{"A": "addr:n5", "B": "addr:n6", "C": "addr:n7", "D": "addr:n3"} {
		recs[name] = newRecorder(t, tr, name, "addr:"+name)
		cls[name] = NewClient(name, "addr:"+name, nodeAddr, tr)
		if err := cls[name].Register(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// A, C join group "music"; B, D do not.
	if err := cls["A"].JoinGroup(ctx, "music"); err != nil {
		t.Fatal(err)
	}
	if err := cls["C"].JoinGroup(ctx, "music"); err != nil {
		t.Fatal(err)
	}
	inner := protocol.MustEnvelope("A", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<E/>"))})
	if err := cls["A"].Multicast(ctx, "music", inner); err != nil {
		t.Fatal(err)
	}
	if recs["C"].count() != 1 {
		t.Errorf("member C got %d, want 1", recs["C"].count())
	}
	if recs["B"].count() != 0 || recs["D"].count() != 0 {
		t.Errorf("non-members received: B=%d D=%d", recs["B"].count(), recs["D"].count())
	}
	if recs["A"].count() != 0 {
		t.Errorf("origin received its own multicast %d times", recs["A"].count())
	}
	// Leave and multicast again: C should receive nothing new.
	if err := cls["C"].LeaveGroup(ctx, "music"); err != nil {
		t.Fatal(err)
	}
	inner2 := protocol.MustEnvelope("A", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<E2/>"))})
	if err := cls["A"].Multicast(ctx, "music", inner2); err != nil {
		t.Fatal(err)
	}
	if recs["C"].count() != 1 {
		t.Errorf("C received after leaving: %d", recs["C"].count())
	}
}

func TestPingAndUnknownType(t *testing.T) {
	tr := transport.NewMemory(1)
	n, _ := NewNode("n1", "addr:n1", 1, tr)
	defer func() { _ = n.Close() }()
	cl := NewClient("S", "addr:S", "addr:n1", tr)
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// Unsupported type yields an error envelope.
	env := protocol.MustEnvelope("S", protocol.MsgSearch, &protocol.Search{Collection: "X", Query: "q"})
	resp, err := tr.Send(context.Background(), "addr:n1", env)
	if err != nil {
		t.Fatal(err)
	}
	if protocol.AsError(resp) == nil {
		t.Error("unsupported type did not error")
	}
}

func TestBroadcastScalesLinear(t *testing.T) {
	// A 40-node chain with one server per node: message count per broadcast
	// should be Θ(nodes + servers).
	tr := transport.NewMemory(1)
	ctx := context.Background()
	const n = 40
	var prev *Node
	var firstClient *Client
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c%02d", i)
		node, err := NewNode(id, "addr:"+id, i+1, tr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		if prev != nil {
			if err := node.AttachToParent(ctx, prev.ID(), prev.Addr()); err != nil {
				t.Fatal(err)
			}
		}
		sname := "s" + id
		newRecorder(t, tr, sname, "addr:"+sname)
		cl := NewClient(sname, "addr:"+sname, "addr:"+id, tr)
		if err := cl.Register(ctx); err != nil {
			t.Fatal(err)
		}
		if firstClient == nil {
			firstClient = cl
		}
		prev = node
	}
	tr.ResetStats()
	inner := protocol.MustEnvelope("sc00", protocol.MsgEvent, &protocol.EventPayload{Event: protocol.Wrap([]byte("<E/>"))})
	if err := firstClient.Broadcast(ctx, inner); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	broadcasts := st.PerType[protocol.MsgBroadcast]
	events := st.PerType[protocol.MsgEvent]
	if broadcasts != n {
		t.Errorf("broadcast relays = %d, want %d (one per node incl. injection)", broadcasts, n)
	}
	if events != n-1 {
		t.Errorf("event deliveries = %d, want %d", events, n-1)
	}
	// Deepest delivery shows the accumulated hop count.
	deepest := int64(0)
	if events > 0 {
		deepest = 1
	}
	_ = deepest
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestRegisterValidation(t *testing.T) {
	tr := transport.NewMemory(1)
	n, _ := NewNode("n1", "addr:n1", 1, tr)
	defer func() { _ = n.Close() }()
	env := protocol.MustEnvelope("S", protocol.MsgRegisterServer, &protocol.RegisterServer{Name: "", Addr: ""})
	resp, err := tr.Send(context.Background(), "addr:n1", env)
	if err != nil {
		t.Fatal(err)
	}
	if protocol.AsError(resp) == nil {
		t.Error("empty registration accepted")
	}
}

func TestResolveTTLExpiry(t *testing.T) {
	tr := transport.NewMemory(1)
	n, _ := NewNode("n1", "addr:n1", 1, tr)
	defer func() { _ = n.Close() }()
	newRecorder(t, tr, "S", "addr:S")
	cl := NewClient("Me", "addr:Me", "addr:n1", tr)
	other := NewClient("S", "addr:S", "addr:n1", tr)
	ctx := context.Background()
	_ = other.Register(ctx)

	fake := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	cl.now = func() time.Time { return fake }
	cl.SetResolveTTL(10 * time.Second)
	if _, err := cl.Resolve(ctx, "S"); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats().PerType[protocol.MsgResolve]
	fake = fake.Add(5 * time.Second)
	_, _ = cl.Resolve(ctx, "S")
	if tr.Stats().PerType[protocol.MsgResolve] != before {
		t.Error("resolve within TTL hit the network")
	}
	fake = fake.Add(6 * time.Second)
	_, _ = cl.Resolve(ctx, "S")
	if tr.Stats().PerType[protocol.MsgResolve] == before {
		t.Error("resolve after TTL did not hit the network")
	}
}
