package event

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleEvent() *Event {
	return New("london-1", TypeCollectionRebuilt, QName{Host: "London", Collection: "E"}, 3,
		[]DocRef{
			{ID: "d1", Metadata: map[string][]string{"dc.Title": {"A Study"}, "dc.Creator": {"Smith", "Jones"}}, Snippet: "..."},
			{ID: "d2", Metadata: map[string][]string{"dc.Title": {"Another"}}},
		},
		time.Date(2005, 6, 1, 12, 0, 0, 0, time.UTC))
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{
		TypeCollectionBuilt, TypeCollectionRebuilt, TypeCollectionRemoved,
		TypeDocumentsAdded, TypeDocumentsChanged, TypeDocumentsRemoved,
	} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("round trip %v -> %v", typ, got)
		}
	}
	if _, err := ParseType("nonsense"); err == nil {
		t.Error("ParseType accepted nonsense")
	}
	if s := Type(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown type string = %q", s)
	}
}

func TestQName(t *testing.T) {
	q, err := ParseQName("Hamilton.D")
	if err != nil {
		t.Fatal(err)
	}
	if q.Host != "Hamilton" || q.Collection != "D" {
		t.Errorf("parsed %+v", q)
	}
	if q.String() != "Hamilton.D" {
		t.Errorf("String = %q", q.String())
	}
	// Collection part may contain dots.
	q2, err := ParseQName("London.F.G")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Collection != "F.G" {
		t.Errorf("nested collection = %q", q2.Collection)
	}
	for _, bad := range []string{"", "NoDot", ".leading", "trailing."} {
		if _, err := ParseQName(bad); err == nil {
			t.Errorf("ParseQName(%q) accepted", bad)
		}
	}
	if !(QName{}).IsZero() {
		t.Error("zero QName not IsZero")
	}
}

func TestEventXMLRoundTrip(t *testing.T) {
	e := sampleEvent()
	raw, err := e.MarshalXMLBytes()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalXMLBytes(raw)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.ID != e.ID || got.Type != e.Type || got.Collection != e.Collection {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Docs) != 2 {
		t.Fatalf("docs = %d", len(got.Docs))
	}
	if got.Docs[0].Metadata["dc.Creator"][1] != "Jones" {
		t.Errorf("metadata lost: %+v", got.Docs[0].Metadata)
	}
	if !got.OccurredAt.Equal(e.OccurredAt) {
		t.Errorf("time: got %v want %v", got.OccurredAt, e.OccurredAt)
	}
	if len(got.Chain) != 1 || got.Chain[0] != e.Collection {
		t.Errorf("chain = %+v", got.Chain)
	}
}

func TestTransform(t *testing.T) {
	e := sampleEvent()
	super := QName{Host: "Hamilton", Collection: "D"}
	te, err := e.Transformed(super)
	if err != nil {
		t.Fatalf("Transformed: %v", err)
	}
	if te.Collection != super {
		t.Errorf("collection = %v", te.Collection)
	}
	if te.Origin != e.Origin {
		t.Errorf("origin should be preserved: %v", te.Origin)
	}
	if te.ID == e.ID {
		t.Error("transformed event must have a distinct ID")
	}
	if len(te.Chain) != 2 || te.Chain[1] != super {
		t.Errorf("chain = %+v", te.Chain)
	}
	// Original untouched.
	if len(e.Chain) != 1 {
		t.Errorf("original chain mutated: %+v", e.Chain)
	}
}

func TestTransformCycleRefused(t *testing.T) {
	e := sampleEvent()
	a := QName{Host: "Hamilton", Collection: "D"}
	te, err := e.Transformed(a)
	if err != nil {
		t.Fatal(err)
	}
	// A cyclic configuration: London.E is (transitively) a super-collection
	// of Hamilton.D too. The second transform back to an already-seen name
	// must be refused.
	_, err = te.Transformed(QName{Host: "London", Collection: "E"})
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CycleError", err)
	}
	if ce.Repeat != (QName{Host: "London", Collection: "E"}) {
		t.Errorf("repeat = %v", ce.Repeat)
	}
	if !strings.Contains(ce.Error(), "London.E") {
		t.Errorf("error text: %s", ce.Error())
	}
}

func TestAttrs(t *testing.T) {
	e := sampleEvent()
	a := e.Attrs()
	if a["collection"] != "London.E" || a["host"] != "London" {
		t.Errorf("attrs = %+v", a)
	}
	if a["event.type"] != "collection-rebuilt" {
		t.Errorf("event.type = %q", a["event.type"])
	}
}

func TestDedupBasics(t *testing.T) {
	d := NewDedup(4)
	if d.Observe("a") {
		t.Error("first observe reported duplicate")
	}
	if !d.Observe("a") {
		t.Error("second observe not duplicate")
	}
	if d.Hits() != 1 {
		t.Errorf("hits = %d", d.Hits())
	}
	if !d.Seen("a") || d.Seen("b") {
		t.Error("Seen wrong")
	}
}

func TestDedupEviction(t *testing.T) {
	d := NewDedup(3)
	for _, id := range []string{"a", "b", "c", "d"} {
		d.Observe(id)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}
	if d.Seen("a") {
		t.Error("oldest entry should have been evicted")
	}
	if !d.Seen("d") {
		t.Error("newest entry missing")
	}
	d.Reset()
	if d.Len() != 0 || d.Seen("d") {
		t.Error("reset incomplete")
	}
}

func TestDedupDefaultCapacity(t *testing.T) {
	d := NewDedup(0)
	for i := 0; i < DefaultDedupCapacity+10; i++ {
		d.Observe(fmt.Sprintf("id-%d", i))
	}
	if d.Len() != DefaultDedupCapacity {
		t.Errorf("len = %d, want %d", d.Len(), DefaultDedupCapacity)
	}
}

func TestDedupConcurrent(t *testing.T) {
	d := NewDedup(1024)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				d.Observe(fmt.Sprintf("g%d-%d", g, i))
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if d.Len() != 1024 {
		t.Errorf("len = %d, want 1024 (capacity)", d.Len())
	}
}

// Property: Observe returns duplicate exactly when the id was observed
// within the capacity window.
func TestDedupProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		d := NewDedup(64)
		model := make(map[string]bool)
		var window []string
		for _, raw := range ids {
			id := fmt.Sprintf("id-%d", raw)
			got := d.Observe(id)
			want := model[id]
			if got != want {
				return false
			}
			if !want {
				model[id] = true
				window = append(window, id)
				if len(window) > 64 {
					delete(model, window[0])
					window = window[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal preserves every doc ID and chain entry.
func TestEventRoundTripProperty(t *testing.T) {
	f := func(n uint8, hops uint8) bool {
		docs := make([]DocRef, 0, int(n)%10)
		for i := 0; i < int(n)%10; i++ {
			docs = append(docs, DocRef{
				ID:       fmt.Sprintf("doc-%d", i),
				Metadata: map[string][]string{"k": {fmt.Sprintf("v%d", i)}},
			})
		}
		e := New("id-x", TypeDocumentsAdded, QName{Host: "H", Collection: "C"}, 1, docs, time.Now())
		for h := 0; h < int(hops)%5; h++ {
			var err error
			e, err = e.Transformed(QName{Host: fmt.Sprintf("H%d", h), Collection: "S"})
			if err != nil {
				return false
			}
		}
		raw, err := e.MarshalXMLBytes()
		if err != nil {
			return false
		}
		got, err := UnmarshalXMLBytes(raw)
		if err != nil {
			return false
		}
		if len(got.Docs) != len(e.Docs) || len(got.Chain) != len(e.Chain) {
			return false
		}
		for i := range e.Docs {
			if got.Docs[i].ID != e.Docs[i].ID {
				return false
			}
		}
		for i := range e.Chain {
			if got.Chain[i] != e.Chain[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
