package event

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Dedup is a bounded, thread-safe set of recently seen message or event IDs.
// The GDS tree is acyclic by construction, but merged directories, retries
// and GS-network forwarding can all re-present a message, so every consumer
// of flooded traffic deduplicates (paper §1 problem 2: "possible infinite
// loops and duplicates of event messages").
//
// Eviction is FIFO over a fixed capacity, which matches the traffic pattern:
// duplicates arrive close together in time.
type Dedup struct {
	mu    sync.Mutex
	cap   int
	seen  map[string]*list.Element
	order *list.List
	// hits is atomic so monitoring paths read it without contending on mu
	// against the hot Observe path.
	hits atomic.Int64
}

// DefaultDedupCapacity bounds the window of remembered IDs.
const DefaultDedupCapacity = 8192

// NewDedup builds a deduplicator holding at most capacity IDs; non-positive
// capacities fall back to DefaultDedupCapacity.
func NewDedup(capacity int) *Dedup {
	if capacity <= 0 {
		capacity = DefaultDedupCapacity
	}
	return &Dedup{
		cap:   capacity,
		seen:  make(map[string]*list.Element, capacity),
		order: list.New(),
	}
}

// Observe records id and reports whether it was already present (true means
// duplicate: the caller should suppress the message).
func (d *Dedup) Observe(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.seen[id]; dup {
		d.hits.Add(1)
		return true
	}
	el := d.order.PushBack(id)
	d.seen[id] = el
	if d.order.Len() > d.cap {
		oldest := d.order.Front()
		d.order.Remove(oldest)
		if key, ok := oldest.Value.(string); ok {
			delete(d.seen, key)
		}
	}
	return false
}

// Seen reports whether id is currently remembered, without recording it.
func (d *Dedup) Seen(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.seen[id]
	return ok
}

// IDs returns every remembered ID in admission (FIFO) order. Replication
// snapshots use it to ship the window to a standby, which replays the list
// through Observe to reproduce the same eviction order.
func (d *Dedup) IDs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, d.order.Len())
	for el := d.order.Front(); el != nil; el = el.Next() {
		if id, ok := el.Value.(string); ok {
			out = append(out, id)
		}
	}
	return out
}

// Len reports the number of remembered IDs.
func (d *Dedup) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.order.Len()
}

// Hits reports how many duplicates have been suppressed. It reads the
// counter atomically, without taking the mutex.
func (d *Dedup) Hits() int64 {
	return d.hits.Load()
}

// Reset forgets everything.
func (d *Dedup) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seen = make(map[string]*list.Element, d.cap)
	d.order = list.New()
	d.hits.Store(0)
}
