package event

import (
	"fmt"
	"sync"
	"testing"
)

// TestDedupConcurrentObserve hammers one Dedup from many goroutines (run
// with -race) and checks the invariants that must survive contention: the
// window never exceeds its capacity, a duplicate observed N times yields
// exactly N-1 hits, and the atomic hit counter can be read concurrently
// with the observers.
func TestDedupConcurrentObserve(t *testing.T) {
	const (
		capacity   = 64
		goroutines = 8
		perG       = 500
	)
	d := NewDedup(capacity)

	// Concurrent readers of the atomic counter while observers run.
	stopRead := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
				_ = d.Hits()
				_ = d.Len()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Disjoint per-goroutine IDs: no cross-goroutine dups, so hit
				// accounting below stays exact.
				d.Observe(fmt.Sprintf("g%d-id%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	close(stopRead)
	readers.Wait()

	if got := d.Len(); got != capacity {
		t.Errorf("window size = %d, want cap %d", got, capacity)
	}
	if got := d.Hits(); got != 0 {
		t.Errorf("hits = %d for disjoint IDs, want 0", got)
	}

	// N goroutines observing the SAME fresh id: exactly one admission,
	// N-1 suppressions — the mutex serialises, the counter is exact.
	before := d.Hits()
	var dupWG sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		dupWG.Add(1)
		go func() {
			defer dupWG.Done()
			d.Observe("shared-id")
		}()
	}
	dupWG.Wait()
	if got := d.Hits() - before; got != goroutines-1 {
		t.Errorf("shared-id hits = %d, want %d", got, goroutines-1)
	}
}

// TestDedupFIFOEvictionUnderParallelObserve checks FIFO eviction across a
// concurrent phase: IDs planted before the parallel storm must be fully
// evicted (the storm exceeds capacity many times over), while the newest
// sequentially-observed IDs survive.
func TestDedupFIFOEvictionUnderParallelObserve(t *testing.T) {
	const capacity = 32
	d := NewDedup(capacity)
	// Plant old IDs.
	for i := 0; i < capacity; i++ {
		d.Observe(fmt.Sprintf("old-%d", i))
	}
	// Parallel storm of fresh IDs, several times the capacity.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4*capacity; i++ {
				d.Observe(fmt.Sprintf("storm-%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	// Every planted ID was pushed out by the storm (FIFO: oldest first).
	for i := 0; i < capacity; i++ {
		if d.Seen(fmt.Sprintf("old-%d", i)) {
			t.Errorf("old-%d survived a %dx-capacity storm", i, 16)
		}
	}
	if got := d.Len(); got != capacity {
		t.Errorf("window size = %d, want %d", got, capacity)
	}
	// Deterministic tail: sequentially observe capacity fresh IDs; they are
	// now the complete window, in order.
	for i := 0; i < capacity; i++ {
		d.Observe(fmt.Sprintf("tail-%d", i))
	}
	for i := 0; i < capacity; i++ {
		if !d.Seen(fmt.Sprintf("tail-%d", i)) {
			t.Errorf("tail-%d missing from window", i)
		}
	}
	// Re-observing the oldest tail ID is a hit, not a re-admission.
	before := d.Hits()
	if !d.Observe("tail-0") {
		t.Error("tail-0 not recognised as duplicate")
	}
	if d.Hits() != before+1 {
		t.Error("duplicate hit not counted")
	}
}
