//go:build !race

package gsalert_test

const raceEnabled = false
