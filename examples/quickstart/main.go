// Quickstart: one GDS node and one Greenstone server over real HTTP
// sockets. A user subscribes to a collection, the collection is built and
// rebuilt, and the notifications arrive.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()

	// 1. A directory node (stratum 1 primary).
	node, err := gds.NewNode("gds-root", "127.0.0.1:17001", 1, tr)
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	// 2. A Greenstone server with alerting, registered at the directory.
	const serverAddr = "127.0.0.1:18001"
	gdsCli := gds.NewClient("Hamilton", serverAddr, node.Addr(), tr)
	store := collection.NewStore("Hamilton")
	svc, err := core.New(core.Config{
		ServerName: "Hamilton",
		ServerAddr: serverAddr,
		Transport:  tr,
		GDS:        gdsCli,
		Store:      store,
	})
	if err != nil {
		return err
	}
	srv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name: "Hamilton", Addr: serverAddr, Transport: tr,
		Store: store, Alerting: svc, Resolver: gdsCli,
	})
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	if err := gdsCli.Register(ctx); err != nil {
		return err
	}
	fmt.Println("Hamilton registered with the GDS over HTTP")

	// 3. alice subscribes to music documents in Hamilton.Recordings.
	notifications := core.NewMemoryNotifier()
	svc.RegisterNotifier("alice", notifications)
	profileID, err := svc.Subscribe("alice", profile.MustParse(
		`collection = "Hamilton.Recordings" AND dc.Title contains "music"`))
	if err != nil {
		return err
	}
	fmt.Printf("alice subscribed with profile %s\n", profileID)

	// 4. Build the collection: the matching document triggers an alert.
	if _, err := srv.AddCollection(ctx, collection.Config{
		Name: "Recordings", Title: "Field Recordings", Public: true,
		IndexFields: []string{"dc.Title"},
	}); err != nil {
		return err
	}
	docs := []*collection.Document{
		{ID: "r1", Metadata: map[string][]string{"dc.Title": {"Music of the Pacific"}},
			Content: "waiata and pacific island music recordings"},
		{ID: "r2", Metadata: map[string][]string{"dc.Title": {"Bird calls"}},
			Content: "dawn chorus recordings"},
	}
	if _, _, err := srv.Build(ctx, "Recordings", docs); err != nil {
		return err
	}

	// 5. Rebuild with a new matching document.
	docs = append(docs, &collection.Document{
		ID:       "r3",
		Metadata: map[string][]string{"dc.Title": {"More music from the archive"}},
		Content:  "newly digitised music",
	})
	if _, _, err := srv.Build(ctx, "Recordings", docs); err != nil {
		return err
	}
	// Delivery is asynchronous (sharded pipeline); settle before reading.
	if err := svc.DrainDeliveries(ctx); err != nil {
		return err
	}

	// 6. Show what alice received.
	fmt.Printf("\nalice received %d notifications:\n", notifications.Len())
	for _, n := range notifications.All() {
		fmt.Printf("  %-20s about %s (docs: %v)\n", n.Event.Type, n.Event.Collection, n.DocIDs)
	}

	// 7. Interactive search through a receptionist, same retrieval engine
	// the profile used (alerting as continuous searching, paper §5).
	recep := greenstone.NewReceptionist("recep", tr)
	recep.Connect("Hamilton", serverAddr)
	res, err := recep.Search(ctx, "Hamilton", "Recordings", "music", "", 10, false)
	if err != nil {
		return err
	}
	fmt.Printf("\ninteractive search for \"music\": %d hits\n", res.Total)
	for _, h := range res.Hits {
		fmt.Printf("  %s %.4f %s\n", h.DocID, h.Score, h.Title)
	}
	return nil
}
