// Content routing walkthrough: a three-node GDS tree over real HTTP
// sockets, three Greenstone servers in content-routing mode. London
// subscribes to Hamilton's rebuild summaries only; Berlin subscribes to
// nothing. The example prints the digest tables the directory nodes
// learned, then rebuilds Hamilton's collection and shows that the rebuild
// summary reaches London while the per-document events — and Berlin —
// are pruned at the directory. See docs/ROUTING.md for the mechanics.
//
//	go run ./examples/content-routing
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "content-routing: %v\n", err)
		os.Exit(1)
	}
}

type node struct {
	server  *greenstone.Server
	service *core.Service
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()

	// 1. A small directory tree: one root, two leaves.
	root, err := gds.NewNode("gds-root", "127.0.0.1:27001", 1, tr)
	if err != nil {
		return err
	}
	defer func() { _ = root.Close() }()
	var leaves []*gds.Node
	for i, addr := range []string{"127.0.0.1:27002", "127.0.0.1:27003"} {
		leaf, err := gds.NewNode(fmt.Sprintf("gds-leaf%d", i+1), addr, 2, tr)
		if err != nil {
			return err
		}
		defer func() { _ = leaf.Close() }()
		if err := leaf.AttachToParent(ctx, root.ID(), root.Addr()); err != nil {
			return err
		}
		leaves = append(leaves, leaf)
	}

	// 2. Three servers in content-routing mode: Hamilton and Berlin on
	// leaf 1, London on leaf 2.
	nodes := make(map[string]node, 3)
	for _, cfg := range []struct{ name, addr, gdsAddr string }{
		{"Hamilton", "127.0.0.1:28001", leaves[0].Addr()},
		{"Berlin", "127.0.0.1:28002", leaves[0].Addr()},
		{"London", "127.0.0.1:28003", leaves[1].Addr()},
	} {
		gdsCli := gds.NewClient(cfg.name, cfg.addr, cfg.gdsAddr, tr)
		store := collection.NewStore(cfg.name)
		svc, err := core.New(core.Config{
			ServerName: cfg.name, ServerAddr: cfg.addr, Transport: tr,
			GDS: gdsCli, Store: store,
			// The walkthrough publishes immediately after subscribing;
			// skip the flood warm-up so the pruning is visible right away.
			ContentWarmup: -1,
		})
		if err != nil {
			return err
		}
		defer func() { _ = svc.Close() }()
		srv, err := greenstone.NewServer(greenstone.ServerConfig{
			Name: cfg.name, Addr: cfg.addr, Transport: tr,
			Store: store, Alerting: svc, Resolver: gdsCli,
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		if err := gdsCli.Register(ctx); err != nil {
			return err
		}
		if err := svc.SetRoutingMode(ctx, core.RouteContent); err != nil {
			return err
		}
		nodes[cfg.name] = node{server: srv, service: svc}
	}

	// 3. London wants only rebuild summaries of Hamilton.D; Berlin wants
	// nothing (it advertised the empty digest when entering content mode).
	notified := make(chan core.Notification, 16)
	nodes["London"].service.RegisterNotifier("alice", core.NotifierFunc(func(n core.Notification) {
		notified <- n
	}))
	if _, err := nodes["London"].service.Subscribe("alice", profile.MustParse(
		`collection = "Hamilton.D" AND event.type = "collection-rebuilt"`)); err != nil {
		return err
	}

	// 4. The digest tables the directory learned from the advertisements.
	printTables := func() {
		for _, n := range append([]*gds.Node{root}, leaves...) {
			snap := n.Snapshot()
			fmt.Printf("  %s:\n", snap.ID)
			links := make([]string, 0, len(snap.Digests))
			for link := range snap.Digests {
				links = append(links, link)
			}
			sort.Strings(links)
			for _, link := range links {
				d := snap.Digests[link]
				if len(d) == 0 {
					fmt.Printf("    %-10s -> (no interests, pruned)\n", link)
					continue
				}
				fmt.Printf("    %-10s -> %v\n", link, d)
			}
		}
	}
	fmt.Println("routing tables after advertisement propagation:")
	printTables()

	// 5. Build twice: the first build emits collection-built (not
	// subscribed), the rebuild emits collection-rebuilt + documents-changed.
	docs := func(rev int) []*collection.Document {
		return []*collection.Document{
			{ID: "d1", Content: fmt.Sprintf("whale songs, revision %d", rev)},
			{ID: "d2", Content: "a steady document"},
		}
	}
	if _, err := nodes["Hamilton"].server.AddCollection(ctx, collection.Config{Name: "D", Public: true}); err != nil {
		return err
	}
	if _, _, err := nodes["Hamilton"].server.Build(ctx, "D", docs(0)); err != nil {
		return err
	}
	if _, _, err := nodes["Hamilton"].server.Build(ctx, "D", docs(1)); err != nil {
		return err
	}
	if err := nodes["Hamilton"].service.DrainDeliveries(ctx); err != nil {
		return err
	}

	select {
	case n := <-notified:
		fmt.Printf("\nLondon notified: %s %s (docs %v)\n", n.Event.Type, n.Event.Collection, n.DocIDs)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("London never received the rebuild summary")
	}

	// 6. What the directory pruned: Hamilton published three events, only
	// the matching one reached London's server, none reached Berlin.
	time.Sleep(200 * time.Millisecond) // let the last HTTP one-ways land
	published := nodes["Hamilton"].service.Stats().EventsPublished
	fmt.Printf("\nHamilton published %d events (built, rebuilt, documents-changed)\n", published)
	for _, name := range []string{"London", "Berlin"} {
		st := nodes[name].service.Stats()
		fmt.Printf("%-8s received %d event(s) from the directory\n", name, st.EventsReceived)
	}
	fmt.Println("\nthe rebuild summary descended only into London's subtree;")
	fmt.Println("per-document events and Berlin's branch were pruned by digest covering")
	return nil
}
