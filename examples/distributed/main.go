// Distributed collections — the paper's Figure 3 scenario, end to end.
//
// Hamilton hosts collection D whose configuration references London.E as a
// sub-collection. When D is registered, Hamilton forwards an auxiliary
// profile to London. When London rebuilds E, the auxiliary profile matches;
// London forwards the event over the Greenstone network to Hamilton, which
// renames it to Hamilton.D and re-broadcasts via the GDS — so a subscriber
// of Hamilton.D at a third server (Berlin) is notified, never knowing E
// exists.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := sim.NewCluster(sim.ClusterConfig{Seed: 2005, GDSNodes: 3, GDSBranching: 2})
	if err != nil {
		return err
	}
	defer cluster.Close()
	for i, name := range []string{"Hamilton", "London", "Berlin"} {
		if _, err := cluster.AddServer(name, i%3); err != nil {
			return err
		}
	}

	// London.E: an ordinary public collection.
	if _, err := cluster.Server("London").AddCollection(ctx, collection.Config{
		Name: "E", Title: "European Reports", Public: true,
	}); err != nil {
		return err
	}
	// Hamilton.D: distributed — includes London.E as a sub-collection.
	// Registering it forwards the auxiliary profile to London (§4.2).
	if _, err := cluster.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "D", Title: "Dissertations", Public: true,
		Subs: []collection.SubRef{{Host: "London", Name: "E"}},
	}); err != nil {
		return err
	}
	fmt.Printf("auxiliary profiles installed at London: %d\n", cluster.Service("London").AuxProfileCount())
	fmt.Printf("auxiliary profiles forwarded by Hamilton: %v\n", cluster.Service("Hamilton").ForwardedAuxIDs())

	// carol at Berlin watches Hamilton.D — she has no idea London exists.
	carol := cluster.Notifier("Berlin", "carol")
	if _, err := cluster.Service("Berlin").Subscribe("carol",
		profile.MustParse(`collection = "Hamilton.D"`)); err != nil {
		return err
	}

	// London rebuilds E.
	docs := []*collection.Document{
		{ID: "e1", Metadata: map[string][]string{"dc.Title": {"Report 2005/1"}},
			Content: "the first european report"},
	}
	if _, _, err := cluster.Server("London").Build(ctx, "E", docs); err != nil {
		return err
	}
	cluster.Settle(ctx)

	fmt.Printf("\nafter London rebuilt London.E, carol@Berlin received %d notification(s):\n", carol.Len())
	for _, n := range carol.All() {
		ev := n.Event
		fmt.Printf("  event %s\n", ev.ID)
		fmt.Printf("    type:       %s\n", ev.Type)
		fmt.Printf("    collection: %s   <- renamed for the super-collection\n", ev.Collection)
		fmt.Printf("    origin:     %s   <- where the build actually ran\n", ev.Origin)
		fmt.Printf("    chain:      %v\n", ev.Chain)
	}
	fmt.Printf("\nHamilton transforms performed: %d\n", cluster.Service("Hamilton").Stats().Transforms)

	// Retrieval side: searching Hamilton.D with sub-collection expansion
	// transparently includes London.E's documents (paper §3).
	recep := cluster.NewReceptionist("recep-I", "Hamilton")
	res, err := recep.Search(ctx, "Hamilton", "D", "european", "", 10, true)
	if err != nil {
		return err
	}
	fmt.Printf("\ndistributed search in Hamilton.D for \"european\": %d hit(s)\n", res.Total)
	for _, h := range res.Hits {
		fmt.Printf("  %s from %s\n", h.DocID, h.Collection)
	}
	return nil
}
