// Composite alerts walkthrough: one Greenstone server over real HTTP, a
// client holding three temporal profiles — a sequence ("new documents,
// then a rebuild"), an accumulation ("three rebuilds"), and a daily digest
// of rebuild summaries — and a collection rebuilt several times. Primitive
// matches drive the composite engine's state machines; completed
// composites arrive as synthesized notifications carrying the
// contributing events (see docs/COMPOSITE.md).
//
//	go run ./examples/composite-alerts
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "composite-alerts: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()

	node, err := gds.NewNode("gds-root", "127.0.0.1:17101", 1, tr)
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	const serverAddr = "127.0.0.1:18101"
	gdsCli := gds.NewClient("Hamilton", serverAddr, node.Addr(), tr)
	store := collection.NewStore("Hamilton")
	svc, err := core.New(core.Config{
		ServerName: "Hamilton",
		ServerAddr: serverAddr,
		Transport:  tr,
		GDS:        gdsCli,
		Store:      store,
	})
	if err != nil {
		return err
	}
	defer func() { _ = svc.Close() }()
	srv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name: "Hamilton", Addr: serverAddr, Transport: tr,
		Store: store, Alerting: svc, Resolver: gdsCli,
	})
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	if err := gdsCli.Register(ctx); err != nil {
		return err
	}

	// alice's three temporal profiles. The windows are generous; the
	// walkthrough advances the engine clock explicitly instead of waiting.
	sink := core.NewMemoryNotifier()
	svc.RegisterNotifier("alice", sink)
	profiles := map[string]string{}
	for name, src := range map[string]string{
		"sequence": `SEQUENCE (collection = "Hamilton.Reports" AND event.type = "documents-added") THEN (collection = "Hamilton.Reports" AND event.type = "collection-rebuilt") WITHIN 24h`,
		"count":    `COUNT 3 OF (collection = "Hamilton.Reports" AND event.type = "collection-rebuilt")`,
		"digest":   `DIGEST (collection = "Hamilton.Reports" AND event.type = "collection-rebuilt") EVERY 24h`,
	} {
		id, err := svc.SubscribeComposite("alice", src)
		if err != nil {
			return err
		}
		profiles[id] = name
		fmt.Printf("alice subscribed %-8s %s\n", name, src)
	}

	// Build the collection, then rebuild it three times with one new
	// document each round.
	if _, err := srv.AddCollection(ctx, collection.Config{
		Name: "Reports", Title: "Weekly Reports", Public: true,
	}); err != nil {
		return err
	}
	docs := []*collection.Document{{ID: "r0", Content: "baseline report"}}
	if _, _, err := srv.Build(ctx, "Reports", docs); err != nil {
		return err
	}
	for round := 1; round <= 3; round++ {
		docs = append(docs, &collection.Document{
			ID:      fmt.Sprintf("r%d", round),
			Content: fmt.Sprintf("report of round %d", round),
		})
		if _, _, err := srv.Build(ctx, "Reports", docs); err != nil {
			return err
		}
	}
	if err := svc.DrainDeliveries(ctx); err != nil {
		return err
	}
	report(sink, profiles, "after three rebuilds")

	// A simulated day passes: the digest flushes everything it accrued.
	svc.CompositeTick(time.Now().Add(25 * time.Hour))
	if err := svc.DrainDeliveries(ctx); err != nil {
		return err
	}
	report(sink, profiles, "after the digest period elapsed")

	st := svc.Stats()
	fmt.Printf("\nengine: %d primitives consumed, %d firings, %d digest flushes, %d live instances\n",
		st.CompositePrimitives, st.CompositeFirings, st.CompositeDigestFlushes, st.CompositeLiveInstances)
	return nil
}

// report prints what alice has received so far.
func report(sink *core.MemoryNotifier, profiles map[string]string, when string) {
	fmt.Printf("\nalice's notifications %s:\n", when)
	for _, n := range sink.All() {
		fmt.Printf("  %-8s alert via %-8s with %d contributing events:\n",
			n.Composite, profiles[n.ProfileID], len(n.Contributing))
		for _, ev := range n.Contributing {
			fmt.Printf("    %-20s %s (build %d)\n", ev.Type, ev.Collection, ev.BuildVersion)
		}
	}
}
