// Fragmentation: why the paper rejects the related-work routing designs.
//
// The same fragmented Greenstone network (solitary servers, islands, link
// cuts, cancellations during outages) is played through four routers: the
// paper's hybrid GDS design and the three §2 baselines. The hybrid stays
// exact; GS flooding misses disconnected fragments (false negatives),
// profile flooding leaves dangling profiles (false positives), and
// rendezvous routing fails when rendezvous nodes are unreachable.
//
//	go run ./examples/fragmentation
package main

import (
	"fmt"
	"os"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fragmentation: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	table := metrics.NewTable(
		"routing correctness on a 64-server network (link cuts + cancellations mid-run)",
		"router", "solitary frac", "expected", "delivered", "false neg %", "false pos %", "messages")
	for _, frag := range []float64{0, 0.5, 0.9} {
		results, err := sim.RunRoutingComparison(64, frag, 2005)
		if err != nil {
			return err
		}
		for _, r := range results {
			table.AddRow(r.Router, r.Fragmentation, r.Score.Expected, r.Score.Delivered,
				100*r.Score.FNRate(), 100*r.Score.FPRate(), r.Messages)
		}
	}
	fmt.Println(table.Render())
	fmt.Println("reading the table: the hybrid design pays a constant directory-tree cost per event")
	fmt.Println("but keeps both error rates at zero regardless of how fragmented the GS network is —")
	fmt.Println("the paper's §1 problems 1–4 in one experiment.")
	return nil
}
