// Federated collections over a GDS tree — the paper's Figure 2 scenario.
//
// Seven directory nodes form a stratum tree; four Greenstone servers
// (Hamilton, London, Berlin, Tokyo) register at different nodes. Users
// subscribe at their own server; a collection built at Hamilton floods
// through the directory tree and every interested user is notified locally,
// wherever their profile lives.
//
//	go run ./examples/federated
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "federated: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	// Seven GDS nodes in a binary stratum tree (Figure 2 has nodes on
	// strata 1..3); deterministic in-memory network.
	cluster, err := sim.NewCluster(sim.ClusterConfig{Seed: 2005, GDSNodes: 7, GDSBranching: 2})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Servers register at different directory nodes (leaves and inner).
	placements := map[string]int{"Hamilton": 3, "London": 6, "Berlin": 4, "Tokyo": 2}
	for name, node := range placements {
		if _, err := cluster.AddServer(name, node); err != nil {
			return err
		}
	}
	for _, n := range cluster.Nodes {
		info := n.Snapshot()
		fmt.Printf("gds node %-5s stratum %d  servers=%v\n", info.ID, info.Stratum, info.Servers)
	}

	// Users subscribe at their local servers to Hamilton's collection.
	subscribers := []string{"London", "Berlin", "Tokyo"}
	for _, server := range subscribers {
		client := "user@" + server
		cluster.Notifier(server, client)
		if _, err := cluster.Service(server).Subscribe(client, profile.MustParse(
			`collection = "Hamilton.Theses" AND event.type = "collection-built"`)); err != nil {
			return err
		}
	}

	// Hamilton builds a new collection; the event floods via the GDS.
	if _, err := cluster.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "Theses", Title: "Thesis Archive", Public: true,
	}); err != nil {
		return err
	}
	docs := []*collection.Document{
		{ID: "t1", Metadata: map[string][]string{"dc.Title": {"A Thesis on Alerting"}}},
		{ID: "t2", Metadata: map[string][]string{"dc.Title": {"Directory Services"}}},
	}
	if _, _, err := cluster.Server("Hamilton").Build(ctx, "Theses", docs); err != nil {
		return err
	}
	cluster.Settle(ctx)

	fmt.Println("\nafter Hamilton built Hamilton.Theses:")
	for _, server := range subscribers {
		client := "user@" + server
		for _, n := range cluster.Notifications(server, client) {
			fmt.Printf("  %-14s notified: %s about %s (%d docs)\n",
				client, n.Event.Type, n.Event.Collection, len(n.Event.Docs))
		}
	}
	stats := cluster.TR.Stats()
	fmt.Printf("\nnetwork cost: %d messages total (%d broadcast relays, %d event deliveries)\n",
		stats.Sent, stats.PerType["gds.broadcast"], stats.PerType["gs.event"])

	// Name resolution across the tree: London finds Tokyo without knowing
	// its address (paper §4.1's DNS-like naming, climbing to the root and
	// delegating).
	resolved, err := cluster.Resolve(ctx, "London", "Tokyo")
	if err != nil {
		return err
	}
	fmt.Printf("London resolved Tokyo via the directory: %s\n", resolved)
	return nil
}
