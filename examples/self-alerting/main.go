// Self-alerting — the health plane dogfooding its own alerts through the
// pipeline (internal/health, docs/HEALTH.md).
//
// One simulated deployment runs a Greenstone server with a tight
// burst-only QoS quota and a health engine evaluating a threshold rule
// over the live metric registry. A workload overruns the quota, the
// deferred-rate rule fires, the quiet tail lets it clear — and every
// state transition is published back into the pipeline as a first-class
// `health-alert` event that an ops subscriber receives like any other
// notification. The same engine serves /healthz and /readyz over HTTP,
// scraped at the end of the run.
//
//	go run ./examples/self-alerting
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/sim"
)

// rules watches the QoS admission path: once deferrals exceed 5% of a
// 30-second window's admissions budget the component degrades; 20 seconds
// above 15% escalates to critical.
const rules = `
rule qos-deferred-warn {
	component = qos
	severity  = warning
	expr      = rate(gsalert_qos_deferred_total[30s]) > 0.01
}

rule qos-deferred-crit {
	component = qos
	severity  = critical
	expr      = rate(gsalert_qos_deferred_total[30s]) > 0.15
	for       = 20s
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "self-alerting: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := sim.NewCluster(sim.ClusterConfig{Seed: 2018, GDSNodes: 1})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// A server whose subscriber quota is burst-only: four tokens, never
	// refilled, so a sustained workload is guaranteed to overrun it.
	ctrl := qos.NewController(qos.Config{SubscriberBurst: 4, BulkDigestEvery: time.Hour})
	if _, err := cluster.AddServerWith("Hamilton", 0, func(cfg *core.Config) {
		cfg.QoS = ctrl
	}); err != nil {
		return err
	}
	svc := cluster.Service("Hamilton")

	// The watched workload: a normal-class subscriber on the collection.
	cluster.Notifier("Hamilton", "worker")
	wp := profile.NewUser("worker-prof", "worker", "Hamilton",
		profile.MustParse(`collection = "Hamilton.D" AND event.type = "documents-added"`))
	wp.Class = qos.ClassNormal
	if err := svc.SubscribeProfile(wp); err != nil {
		return err
	}

	// The dogfood loop: an ops subscriber receives the health plane's own
	// transitions as pipeline events, realtime class.
	ops := cluster.Notifier("Hamilton", "ops")
	op := profile.NewUser("ops-prof", "ops", "Hamilton",
		profile.MustParse(`event.type = "health-alert"`))
	op.Class = qos.ClassRealtime
	if err := svc.SubscribeProfile(op); err != nil {
		return err
	}

	// The health engine reads the same registry /metrics serves, and every
	// transition goes back into the pipeline via PublishHealthAlert.
	reg := obs.NewRegistry()
	obs.RegisterService(reg, svc.Stats)
	obs.RegisterQoS(reg, ctrl)
	rs, err := health.ParseRules(rules)
	if err != nil {
		return err
	}
	eng := health.NewEngine(reg, rs, health.Options{
		OnTransition: func(tr health.Transition) {
			if err := svc.PublishHealthAlert(context.Background(), core.HealthAlert{
				Component: tr.Component, From: tr.From.String(), To: tr.To.String(),
				Rule: tr.Rule, Severity: tr.Severity, Value: tr.Value, At: tr.At,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "self-alerting: publish meta-alert: %v\n", err)
			}
		},
	})
	defer eng.Close()
	eng.Register(reg)
	eng.AddReadiness("pipeline", func() error { return nil })

	// Drive rounds of builds with a virtual-clock tick after each one: the
	// quota exhausts after four admissions, the deferred rate climbs and
	// the rules fire; six quiet ticks afterwards let them clear.
	if _, err := cluster.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "D", Title: "Dissertations", Public: true,
	}); err != nil {
		return err
	}
	clock := time.Unix(1_700_000_000, 0)
	tick := func() {
		clock = clock.Add(10 * time.Second)
		eng.TickAt(clock)
		cluster.Settle(ctx)
	}
	docs := []*collection.Document{{ID: "base", Content: "self alerting report"}}
	if _, _, err := cluster.Server("Hamilton").Build(ctx, "D", docs); err != nil {
		return err
	}
	cluster.Settle(ctx)
	for round := 1; round <= 8; round++ {
		docs = append(docs, &collection.Document{
			ID:      fmt.Sprintf("d%d", round),
			Content: "self alerting report",
		})
		if _, _, err := cluster.Server("Hamilton").Build(ctx, "D", docs); err != nil {
			return err
		}
		tick()
	}
	for i := 0; i < 6; i++ {
		tick() // quiet tail: the deferred rate decays and the rules clear
	}

	// What the run produced: the state machine's transition log, and the
	// same transitions received as pipeline events by the ops subscriber.
	trs := eng.Transitions()
	fmt.Printf("health transitions (%d):\n", len(trs))
	for _, tr := range trs {
		fmt.Printf("  %-4s %s -> %s  rule=%s severity=%s value=%.3f\n",
			tr.Component, tr.From, tr.To, tr.Rule, tr.Severity, tr.Value)
	}
	ns := ops.All()
	fmt.Printf("\nops subscriber received %d meta-alerts through the pipeline:\n", len(ns))
	for _, n := range ns {
		d := n.Event.Docs[0]
		fmt.Printf("  %s  %s -> %s  (rule %s)\n", n.Event.Collection,
			first(d.Metadata["health.from"]), first(d.Metadata["health.state"]),
			first(d.Metadata["health.rule"]))
	}
	if len(trs) == 0 || len(ns) != len(trs) {
		return fmt.Errorf("dogfood mismatch: %d transitions but %d delivered meta-alerts", len(trs), len(ns))
	}
	st := svc.Stats()
	fmt.Printf("\nworkload: admitted=%d deferred=%d health_alerts=%d\n",
		st.QoSAdmitted, st.QoSDeferred, st.HealthAlerts)

	// The same engine behind /healthz and /readyz, scraped over HTTP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/healthz", health.HealthzHandler(eng))
	mux.Handle("/readyz", health.ReadyzHandler(eng))
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	for _, path := range []string{"/healthz", "/readyz"} {
		code, body, err := get("http://" + ln.Addr().String() + path)
		if err != nil {
			return err
		}
		fmt.Printf("\nGET %s -> %d\n%s", path, code, body)
	}
	fmt.Println("\nsee docs/HEALTH.md for the rule grammar and the burn-rate math")
	return nil
}

func first(v []string) string {
	if len(v) == 0 {
		return "?"
	}
	return v[0]
}

func get(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(b), nil
}
