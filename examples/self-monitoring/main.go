// Self-monitoring — the observability pipeline end to end (internal/obs,
// docs/OBSERVABILITY.md).
//
// One simulated deployment (a GDS node plus a Greenstone server with QoS
// admission on) is wired into a metric registry, a workload is driven
// through it, and both halves of the observability story run against the
// live counters:
//
//   - pull: a /metrics endpoint is scraped over HTTP and a slice of the
//     Prometheus text catalog is printed;
//   - push: the self-monitoring exporter compresses registry snapshots and
//     ships them to a local HTTP sink until at least two blocks arrive,
//     then reports its own gsalert_exporter_* counters — the exporter
//     watching itself through the registry it exports.
//
// The dashboards/ and alerts/ directories next to this file hold a Grafana
// dashboard and Prometheus alert rules over the same series.
//
//	go run ./examples/self-monitoring
package main

import (
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "self-monitoring: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := sim.NewCluster(sim.ClusterConfig{Seed: 2005, GDSNodes: 1})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctrl := qos.NewController(qos.Config{
		SubscriberRate:  50,
		SubscriberBurst: 100,
		CollectionRate:  500,
		CollectionBurst: 1000,
	})
	if _, err := cluster.AddServerWith("Hamilton", 0, func(cfg *core.Config) {
		cfg.QoS = ctrl
	}); err != nil {
		return err
	}
	svc := cluster.Service("Hamilton")

	// The full catalog in one registry: core service, delivery pipeline,
	// QoS admission, the directory node and the Go runtime.
	reg := obs.NewRegistry()
	obs.RegisterService(reg, svc.Stats)
	obs.RegisterDelivery(reg, svc.Delivery())
	obs.RegisterQoS(reg, ctrl)
	obs.RegisterGDSNode(reg, cluster.Nodes[0])
	obs.RegisterGoRuntime(reg)

	// Drive a workload so the counters have something to say: one
	// subscriber per class, three rebuilds.
	for _, sub := range []struct {
		client string
		class  qos.Class
	}{{"ada", qos.ClassRealtime}, {"bob", qos.ClassNormal}, {"cora", qos.ClassBulk}} {
		cluster.Notifier("Hamilton", sub.client)
		p := profile.NewUser(sub.client+"-prof", sub.client, "Hamilton",
			profile.MustParse(`collection = "Hamilton.D"`))
		p.Class = sub.class
		if err := svc.SubscribeProfile(p); err != nil {
			return err
		}
	}
	if _, err := cluster.Server("Hamilton").AddCollection(ctx, collection.Config{
		Name: "D", Title: "Dissertations", Public: true,
	}); err != nil {
		return err
	}
	for round := 0; round < 3; round++ {
		docs := []*collection.Document{{
			ID:       fmt.Sprintf("d%d", round),
			Metadata: map[string][]string{"dc.Title": {fmt.Sprintf("Report %d", round)}},
			Content:  "self monitoring report",
		}}
		if _, _, err := cluster.Server("Hamilton").Build(ctx, "D", docs); err != nil {
			return err
		}
	}
	cluster.Settle(ctx)

	// --- Pull: serve /metrics and scrape it over HTTP. ---
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	metricsSrv := &http.Server{Handler: obs.Handler(reg), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = metricsSrv.Serve(ln) }()
	defer func() { _ = metricsSrv.Close() }()

	body, err := scrape("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		return err
	}
	fmt.Printf("scraped /metrics: %d series lines; a slice of the catalog:\n", countSamples(body))
	for _, prefix := range []string{
		"gsalert_core_events_published_total",
		"gsalert_core_notifications_total",
		"gsalert_delivery_delivered_by_class_total",
		"gsalert_delivery_queue_depth{class=\"realtime\",shard=\"0\"}",
		"gsalert_qos_quota_tokens",
		"gsalert_gds_deliveries_total",
	} {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, prefix) {
				fmt.Printf("  %s\n", line)
			}
		}
	}

	// --- Push: a local sink receives the exporter's gzip'd snapshots. ---
	var blocks atomic.Int64
	sinkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	sinkSrv := &http.Server{
		ReadHeaderTimeout: 10 * time.Second,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			zr, err := gzip.NewReader(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if _, err := io.Copy(io.Discard, zr); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			blocks.Add(1)
			w.WriteHeader(http.StatusNoContent)
		}),
	}
	go func() { _ = sinkSrv.Serve(sinkLn) }()
	defer func() { _ = sinkSrv.Close() }()

	exp, err := obs.NewExporter(reg, obs.ExporterConfig{
		URL:      "http://" + sinkLn.Addr().String() + "/import",
		Interval: 150 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for blocks.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	exp.Close()
	if blocks.Load() < 2 {
		return fmt.Errorf("sink received %d snapshot blocks, want >= 2", blocks.Load())
	}

	m := exp.Metrics()
	fmt.Printf("\nexporter pushed %d snapshot blocks to the local sink (%d bytes gzip'd)\n",
		m.Sent.Value(), m.BytesSent.Value())
	fmt.Printf("exporter self-monitoring: scrapes=%d sent=%d retries=%d dropped=%d\n",
		m.Scrapes.Value(), m.Sent.Value(), m.Retries.Value(), m.Dropped.Value())
	fmt.Println("\nimport dashboards/gsalert.json and alerts/gsalert-alerts.yaml to watch a real deployment (docs/OBSERVABILITY.md)")
	return nil
}

// scrape GETs url and returns the body.
func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("scrape %s: http %d", url, resp.StatusCode)
	}
	return string(b), nil
}

// countSamples counts non-comment lines in a Prometheus exposition.
func countSamples(body string) int {
	n := 0
	for _, line := range strings.Split(body, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}
