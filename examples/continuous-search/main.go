// Continuous search and "watch this" — alerting as a fluent extension of
// searching and browsing (paper §1 problem 5, §5).
//
// A user's interactive search query becomes a standing profile; documents
// that would have been hits trigger alerts as they arrive. Browsing is
// extended with identity-centred observation: watching specific documents
// fires when exactly those documents change.
//
//	go run ./examples/continuous-search
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "continuous-search: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := sim.NewCluster(sim.ClusterConfig{Seed: 2005, GDSNodes: 1, GDSBranching: 2})
	if err != nil {
		return err
	}
	defer cluster.Close()
	if _, err := cluster.AddServer("Hamilton", 0); err != nil {
		return err
	}
	srv := cluster.Server("Hamilton")
	svc := cluster.Service("Hamilton")
	if _, err := srv.AddCollection(ctx, collection.Config{
		Name: "Songs", Public: true, Classifiers: []string{"dc.Title"},
	}); err != nil {
		return err
	}
	coll := event.QName{Host: "Hamilton", Collection: "Songs"}

	// 1. Continuous search: the query "whale AND songs" as a profile.
	searcher := cluster.Notifier("Hamilton", "searcher")
	if _, err := svc.SubscribeQuery("searcher", coll, "", "whale AND songs"); err != nil {
		return err
	}

	// 2. Watch-this: browse-level observation of two specific documents.
	watcher := cluster.Notifier("Hamilton", "watcher")
	if _, err := svc.WatchDocuments("watcher", coll, []string{"s2", "s4"}); err != nil {
		return err
	}

	// First build: two docs, one matching the query.
	build := func(docs ...*collection.Document) error {
		if _, _, err := srv.Build(ctx, "Songs", docs); err != nil {
			return err
		}
		cluster.Settle(ctx)
		return nil
	}
	s1 := &collection.Document{ID: "s1", Metadata: map[string][]string{"dc.Title": {"Humpback"}},
		Content: "humpback whale songs recorded offshore"}
	s2 := &collection.Document{ID: "s2", Metadata: map[string][]string{"dc.Title": {"Kiwi"}},
		Content: "kiwi calls at night"}
	if err := build(s1, s2); err != nil {
		return err
	}
	report := func(who string, sink interface{ Len() int }) {
		fmt.Printf("%-10s notifications so far: %d\n", who, sink.Len())
	}
	fmt.Println("after first build (s1 matches the query, nothing watched changed):")
	report("searcher", searcher)
	report("watcher", watcher)

	// Second build: s2 changes (watched!), s3 added (no match), s4 added
	// (watched) with whale content (query match too).
	s2b := &collection.Document{ID: "s2", Metadata: map[string][]string{"dc.Title": {"Kiwi (remastered)"}},
		Content: "kiwi calls at night, remastered"}
	s3 := &collection.Document{ID: "s3", Content: "wind in the trees"}
	s4 := &collection.Document{ID: "s4", Content: "more whale songs from the south"}
	if err := build(s1, s2b, s3, s4); err != nil {
		return err
	}
	fmt.Println("\nafter second build (s2 changed, s4 added with matching content):")
	report("searcher", searcher)
	report("watcher", watcher)

	fmt.Println("\nsearcher's alerts (continuous search):")
	for _, n := range searcher.All() {
		fmt.Printf("  %-20s docs %v\n", n.Event.Type, n.DocIDs)
	}
	fmt.Println("watcher's alerts (watch this):")
	for _, n := range watcher.All() {
		fmt.Printf("  %-20s docs %v\n", n.Event.Type, n.DocIDs)
	}
	return nil
}
