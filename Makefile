GO ?= go

.PHONY: all build vet test race bench experiments docs-check clean

all: vet build test docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Render every experiment table (E1–E12).
experiments:
	$(GO) run ./cmd/alert-bench

# Verify README package table, package doc comments and docs/ links.
docs-check:
	$(GO) run ./cmd/docs-check

clean:
	$(GO) clean ./...
