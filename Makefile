GO ?= go
# Per-benchmark budget for the machine-readable bench run; raise it for
# stable numbers, lower it for a quick smoke pass.
BENCHTIME ?= 0.2s

.PHONY: all build vet test race bench bench-json bench-diff experiments docs-check examples-smoke chaos fuzz-smoke clean

all: vet build test docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark results: run the root benchmark suite with
# -benchmem and record name → ns/op, B/op, allocs/op (+ custom metrics)
# in BENCH_results.json. CI runs this as a non-blocking step and uploads
# the artifact.
bench-json:
	$(GO) test -run XXX -bench . -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/bench-json -o BENCH_results.json

# Compare fresh benchmark runs against the committed BENCH_results.json and
# warn on >25% ns/op regressions. The suite runs TWICE: bench-diff takes the
# best of both runs and uses the run-to-run spread as a per-benchmark noise
# floor, which makes BENCH_DIFF_FLAGS=-fail safe as a CI gate even on noisy
# shared runners. Warn-only by default.
BENCH_BASELINE ?= BENCH_results.json
bench-diff:
	$(GO) test -run XXX -bench . -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/bench-json -o /tmp/bench-current.json
	$(GO) test -run XXX -bench . -benchmem -benchtime $(BENCHTIME) . | $(GO) run ./cmd/bench-json -o /tmp/bench-noise.json
	$(GO) run ./cmd/bench-diff -baseline $(BENCH_BASELINE) -current /tmp/bench-current.json -noise /tmp/bench-noise.json -threshold 25 $(BENCH_DIFF_FLAGS)

# Render every experiment table (E1–E12).
experiments:
	$(GO) run ./cmd/alert-bench

# Verify README package table, package doc comments and docs/ links.
docs-check:
	$(GO) run ./cmd/docs-check

# The E16 chaos-soak gate: the scale/chaos acceptance tests under -race
# (short schedule — 20k-profile population), the E18 health-plane
# acceptance (deterministic fire/clear, mode-identical meta-alerts,
# readiness across failover), plus the concurrency composition test and
# the fault-engine suites. CI runs this as the chaos-soak job and uploads
# a cmd/loadgen summary + health transition log as artifacts; run
# cmd/loadgen directly for the full 100k-profile soak.
chaos:
	$(GO) test -race -short -count=1 -timeout 600s \
		-run 'TestChaosSoak|TestPromotionConcurrent|TestLoadGen|TestClassSLO|TestHealth' ./internal/sim/
	$(GO) test -race -count=1 ./internal/chaos/ ./internal/transport/ ./internal/queue/ ./internal/health/

# Run each fuzz target briefly against its committed corpus plus a short
# exploration budget (regression seeds under testdata/fuzz are always
# replayed by plain `go test`).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/profile/
	$(GO) test -fuzz FuzzParseText -fuzztime $(FUZZTIME) ./internal/profile/
	$(GO) test -fuzz FuzzUnmarshal -fuzztime $(FUZZTIME) ./internal/protocol/

# Build and run every example program with a timeout, so the walkthroughs
# cannot silently rot. Each example is a self-terminating demo; a hang or a
# non-zero exit fails the target.
examples-smoke:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		timeout 120 $(GO) run ./$$d > /dev/null; \
	done; echo "examples-smoke: all examples built and ran"

clean:
	$(GO) clean ./...
