GO ?= go

.PHONY: all build vet test race bench experiments clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Render every experiment table (E1–E11).
experiments:
	$(GO) run ./cmd/alert-bench

clean:
	$(GO) clean ./...
