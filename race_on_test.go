//go:build race

package gsalert_test

// raceEnabled reports whether this binary was built with the race
// detector; timing-comparison tests skip themselves under its
// instrumentation overhead.
const raceEnabled = true
