// Command bench-diff compares a fresh benchmark run against the committed
// BENCH_results.json and reports per-benchmark ns/op movement, so the
// recorded performance trajectory is enforceable instead of decorative.
// A benchmark whose ns/op regressed beyond the threshold is listed as a
// WARNING; with -fail the exit code turns the warnings into a gate (CI runs
// without -fail, as a non-blocking step — benchmark noise on shared runners
// must not block merges).
//
//	make bench-diff
//	go run ./cmd/bench-diff -baseline BENCH_results.json -current /tmp/bench.json -threshold 25
//
// Both inputs are the cmd/bench-json format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// result mirrors the cmd/bench-json entry shape (extra fields ignored).
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// file mirrors the cmd/bench-json output shape.
type file struct {
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	os.Exit(run())
}

func run() int {
	baseline := flag.String("baseline", "BENCH_results.json", "committed benchmark results (cmd/bench-json format)")
	current := flag.String("current", "", "fresh benchmark results to compare (required)")
	threshold := flag.Float64("threshold", 25, "ns/op regression percentage that triggers a warning")
	failOn := flag.Bool("fail", false, "exit non-zero when any benchmark regresses beyond the threshold")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "bench-diff: -current is required")
		return 2
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
		return 2
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		now := cur[name]
		was, ok := base[name]
		switch {
		case !ok:
			fmt.Printf("NEW      %-60s %14.0f ns/op\n", name, now)
		case was <= 0 || now <= 0:
			fmt.Printf("SKIP     %-60s (unmeasured ns/op)\n", name)
		default:
			pct := 100 * (now - was) / was
			tag := "ok"
			if pct > *threshold {
				tag = "WARNING"
				regressions++
			} else if pct < -*threshold {
				tag = "faster"
			}
			fmt.Printf("%-8s %-60s %14.0f → %14.0f ns/op  %+6.1f%%\n", tag, name, was, now, pct)
		}
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Printf("DROPPED  %-60s (in baseline, not in current run)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Printf("bench-diff: %d benchmark(s) regressed more than %.0f%% vs %s\n", regressions, *threshold, *baseline)
		if *failOn {
			return 1
		}
		return 0
	}
	fmt.Printf("bench-diff: no ns/op regressions beyond %.0f%% vs %s\n", *threshold, *baseline)
	return 0
}

// load reads a bench-json file into name → ns/op.
func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out, nil
}
