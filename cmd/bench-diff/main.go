// Command bench-diff compares a fresh benchmark run against the committed
// BENCH_results.json and reports per-benchmark ns/op movement, so the
// recorded performance trajectory is enforceable instead of decorative.
// A benchmark whose ns/op regressed beyond the threshold is listed as a
// WARNING; with -fail the exit code turns the warnings into a gate.
//
// What makes -fail safe on shared CI runners is -noise: a SECOND fresh run
// of the same suite. Per benchmark the comparison then takes the best
// (minimum) of the two runs, and the observed spread between the runs sets
// the noise floor, at two levels: per benchmark (2× its own spread) and
// suite-wide (the largest spread seen anywhere this invocation — if any
// benchmark wobbled 80% between two back-to-back runs, the machine is
// demonstrably that noisy right now and no smaller "regression" is
// trustworthy). The effective threshold per benchmark is
// max(-threshold, 2×own spread%, max spread%).
//
//	make bench-diff                        # warn only
//	make bench-diff BENCH_DIFF_FLAGS=-fail # gate (CI)
//	go run ./cmd/bench-diff -baseline BENCH_results.json \
//	    -current /tmp/run1.json -noise /tmp/run2.json -threshold 25 -fail
//
// All inputs are the cmd/bench-json format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// result mirrors the cmd/bench-json entry shape (extra fields ignored).
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// file mirrors the cmd/bench-json output shape.
type file struct {
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	os.Exit(run())
}

func run() int {
	baseline := flag.String("baseline", "BENCH_results.json", "committed benchmark results (cmd/bench-json format)")
	current := flag.String("current", "", "fresh benchmark results to compare (required)")
	noise := flag.String("noise", "", "second fresh run of the same suite; sets a per-benchmark noise floor and the comparison takes the best of both runs")
	threshold := flag.Float64("threshold", 25, "ns/op regression percentage that triggers a warning")
	failOn := flag.Bool("fail", false, "exit non-zero when any benchmark regresses beyond its effective threshold")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "bench-diff: -current is required")
		return 2
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
		return 2
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
		return 2
	}
	// With a noise run, fold it in: best-of-two values and the run-to-run
	// spread as the noise floors under the fixed threshold.
	noisePct := make(map[string]float64)
	suiteNoise := 0.0
	if *noise != "" {
		second, err := load(*noise)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-diff: %v\n", err)
			return 2
		}
		for name, now := range cur {
			again, ok := second[name]
			if !ok || now <= 0 || again <= 0 {
				continue
			}
			best, worst := now, again
			if best > worst {
				best, worst = worst, best
			}
			cur[name] = best
			noisePct[name] = 100 * (worst - best) / best
			if noisePct[name] > suiteNoise {
				suiteNoise = noisePct[name]
			}
		}
		if suiteNoise > *threshold {
			fmt.Printf("suite noise floor %.0f%%: the largest run-to-run spread exceeds the %.0f%% threshold; only larger regressions can be trusted this run\n", suiteNoise, *threshold)
		}
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		now := cur[name]
		was, ok := base[name]
		switch {
		case !ok:
			fmt.Printf("NEW      %-60s %14.0f ns/op\n", name, now)
		case was <= 0 || now <= 0:
			fmt.Printf("SKIP     %-60s (unmeasured ns/op)\n", name)
		default:
			pct := 100 * (now - was) / was
			// A noisy benchmark raises its own bar (2× its spread), and a
			// noisy machine raises everyone's (the largest spread seen).
			eff := *threshold
			if floor := 2 * noisePct[name]; floor > eff {
				eff = floor
			}
			if suiteNoise > eff {
				eff = suiteNoise
			}
			tag := "ok"
			if pct > eff {
				tag = "WARNING"
				regressions++
			} else if pct < -eff {
				tag = "faster"
			}
			note := ""
			if eff != *threshold {
				note = fmt.Sprintf("  (noise floor %.0f%%)", eff)
			}
			fmt.Printf("%-8s %-60s %14.0f → %14.0f ns/op  %+6.1f%%%s\n", tag, name, was, now, pct, note)
		}
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			fmt.Printf("DROPPED  %-60s (in baseline, not in current run)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Printf("bench-diff: %d benchmark(s) regressed beyond their effective threshold (base %.0f%%) vs %s\n", regressions, *threshold, *baseline)
		if *failOn {
			return 1
		}
		return 0
	}
	fmt.Printf("bench-diff: no ns/op regressions beyond %.0f%% vs %s\n", *threshold, *baseline)
	return 0
}

// load reads a bench-json file into name → ns/op.
func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out, nil
}
