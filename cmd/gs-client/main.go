// Command gs-client is the user-side tool: it talks to Greenstone servers
// through a receptionist (paper §3), supporting describe, search, browse,
// document retrieval, and the alerting operations — subscribe with a
// profile expression, continuous search, watch-this, and a notification
// listener.
//
//	gs-client describe  -host 127.0.0.1:8001
//	gs-client search    -host 127.0.0.1:8001 -collection Demo -query "alerting" -follow
//	gs-client subscribe -host 127.0.0.1:8001 -server Hamilton -client alice \
//	                    -expr 'collection = "Hamilton.Demo"' -listen 127.0.0.1:9001
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/profile"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	os.Exit(run())
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gs-client <describe|search|browse|get|subscribe|listen|watch|trace|logs|health> [flags]
run "gs-client <command> -h" for command flags`)
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	cmd, args := os.Args[1], os.Args[2:]
	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()
	recep := greenstone.NewReceptionist("gs-client", tr)
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	var err error
	switch cmd {
	case "describe":
		err = cmdDescribe(ctx, recep, args)
	case "search":
		err = cmdSearch(ctx, recep, args)
	case "browse":
		err = cmdBrowse(ctx, recep, args)
	case "get":
		err = cmdGet(ctx, recep, args)
	case "subscribe":
		err = cmdSubscribe(ctx, recep, args)
	case "listen":
		err = cmdListen(ctx, recep, args)
	case "watch":
		err = cmdWatch(ctx, recep, args)
	case "trace":
		err = cmdTrace(ctx, args)
	case "logs":
		err = cmdLogs(ctx, args)
	case "health":
		err = cmdHealth(ctx, args)
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-client: %v\n", err)
		return 1
	}
	return 0
}

// hostFlag declares the common -host flag and connects the receptionist.
func hostFlag(fs *flag.FlagSet) *string {
	return fs.String("host", "127.0.0.1:8001", "Greenstone server address")
}

func connect(recep *greenstone.Receptionist, addr string) string {
	// The receptionist keys hosts by name; for the CLI the address doubles
	// as the name.
	recep.Connect(addr, addr)
	return addr
}

func cmdDescribe(ctx context.Context, recep *greenstone.Receptionist, args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	host := hostFlag(fs)
	_ = fs.Parse(args)
	connect(recep, *host)
	results, err := recep.Describe(ctx)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("host %s:\n", r.Host)
		for _, c := range r.Collections {
			kind := "collection"
			if c.Virtual {
				kind = "virtual collection"
			}
			fmt.Printf("  %-12s %-20s %d docs, build %d", c.Name, kind, c.DocCount, c.BuildVersion)
			if len(c.SubCollections) > 0 {
				fmt.Printf(", subs: %s", strings.Join(c.SubCollections, ", "))
			}
			fmt.Println()
		}
	}
	return nil
}

func cmdSearch(ctx context.Context, recep *greenstone.Receptionist, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	host := hostFlag(fs)
	coll := fs.String("collection", "", "collection name")
	query := fs.String("query", "", "retrieval query")
	field := fs.String("field", "", "metadata field to search (empty = full text)")
	limit := fs.Int("limit", 10, "max hits")
	follow := fs.Bool("follow", false, "expand distributed sub-collections")
	_ = fs.Parse(args)
	if *coll == "" || *query == "" {
		return fmt.Errorf("search requires -collection and -query")
	}
	h := connect(recep, *host)
	res, err := recep.Search(ctx, h, *coll, *query, *field, *limit, *follow)
	if err != nil {
		return err
	}
	fmt.Printf("%d hits\n", res.Total)
	for _, hit := range res.Hits {
		fmt.Printf("  %-24s %-12s %.4f  %s\n", hit.Collection, hit.DocID, hit.Score, hit.Title)
	}
	return nil
}

func cmdBrowse(ctx context.Context, recep *greenstone.Receptionist, args []string) error {
	fs := flag.NewFlagSet("browse", flag.ExitOnError)
	host := hostFlag(fs)
	coll := fs.String("collection", "", "collection name")
	classifier := fs.String("classifier", "dc.Title", "classifier field")
	_ = fs.Parse(args)
	if *coll == "" {
		return fmt.Errorf("browse requires -collection")
	}
	h := connect(recep, *host)
	res, err := recep.Browse(ctx, h, *coll, *classifier)
	if err != nil {
		return err
	}
	for _, b := range res.Buckets {
		fmt.Printf("  [%s] %s\n", b.Label, strings.Join(b.DocIDs, ", "))
	}
	return nil
}

func cmdGet(ctx context.Context, recep *greenstone.Receptionist, args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	host := hostFlag(fs)
	coll := fs.String("collection", "", "collection name")
	doc := fs.String("doc", "", "document id")
	_ = fs.Parse(args)
	if *coll == "" || *doc == "" {
		return fmt.Errorf("get requires -collection and -doc")
	}
	h := connect(recep, *host)
	d, err := recep.GetDocument(ctx, h, *coll, *doc)
	if err != nil {
		return err
	}
	fmt.Printf("document %s (%s)\n", d.ID, d.MIME)
	for _, m := range d.Metadata {
		fmt.Printf("  %s: %s\n", m.Name, strings.Join(m.Values, "; "))
	}
	if d.Content != "" {
		fmt.Printf("  ---\n  %s\n", d.Content)
	}
	return nil
}

func cmdSubscribe(ctx context.Context, recep *greenstone.Receptionist, args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	host := hostFlag(fs)
	server := fs.String("server", "", "server name (the profile's home server)")
	client := fs.String("client", "alice", "client identifier")
	expr := fs.String("expr", "", "profile expression, e.g. 'collection = \"Hamilton.Demo\"', or a composite profile such as 'SEQUENCE (...) THEN (...) WITHIN 24h', 'COUNT 10 OF (...)' or 'DIGEST (...) EVERY 24h'")
	listen := fs.String("listen", "", "address to receive notifications on (empty = register and exit)")
	id := fs.String("id", "", "profile id (default <client>-<unix time>)")
	classFlag := fs.String("class", "normal", "QoS priority class: realtime, normal or bulk (docs/QOS.md)")
	_ = fs.Parse(args)
	if *expr == "" || *server == "" {
		return fmt.Errorf("subscribe requires -server and -expr")
	}
	class, err := qos.ParseClass(*classFlag)
	if err != nil {
		return err
	}
	parsed, comp, err := profile.ParseText(*expr)
	if err != nil {
		return err
	}
	if *id == "" {
		*id = fmt.Sprintf("%s-%d", *client, time.Now().Unix())
	}
	h := connect(recep, *host)
	var p *profile.Profile
	if comp != nil {
		p, err = profile.NewComposite(*id, *client, *server, comp)
		if err != nil {
			return err
		}
	} else {
		p = profile.NewUser(*id, *client, *server, parsed)
	}
	if err := recep.SubscribeWithClass(ctx, h, p, class); err != nil {
		return err
	}
	fmt.Printf("subscribed: profile %s (%s) for client %s at %s\n", p.ID, class, *client, *server)
	if *listen == "" {
		return nil
	}
	return listenLoop(ctx, recep, *listen, *client, *server, h)
}

// cmdListen re-attaches an existing client without creating a new profile:
// the reconnect flow. Alerts parked in the client's server-side mailbox
// while it was offline arrive first.
func cmdListen(ctx context.Context, recep *greenstone.Receptionist, args []string) error {
	fs := flag.NewFlagSet("listen", flag.ExitOnError)
	host := hostFlag(fs)
	server := fs.String("server", "", "server name (informational; the -host address is contacted)")
	client := fs.String("client", "alice", "client identifier")
	listen := fs.String("listen", "127.0.0.1:9001", "address to receive notifications on")
	_ = fs.Parse(args)
	h := connect(recep, *host)
	name := *server
	if name == "" {
		name = h
	}
	return listenLoop(ctx, recep, *listen, *client, name, h)
}

func cmdWatch(ctx context.Context, recep *greenstone.Receptionist, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	host := hostFlag(fs)
	server := fs.String("server", "", "server name")
	coll := fs.String("collection", "", "collection name")
	client := fs.String("client", "alice", "client identifier")
	docs := fs.String("docs", "", "comma-separated document ids to watch")
	listen := fs.String("listen", "", "address to receive notifications on")
	_ = fs.Parse(args)
	if *server == "" || *coll == "" || *docs == "" {
		return fmt.Errorf("watch requires -server, -collection and -docs")
	}
	ids := strings.Split(*docs, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	// The watch-this profile is the identity-centred observation of §5.
	expr := fmt.Sprintf(`collection = "%s.%s" AND doc.id in (%s)`, *server, *coll, quoteList(ids))
	return cmdSubscribe(ctx, recep, []string{
		"-host", *host, "-server", *server, "-client", *client, "-expr", expr, "-listen", *listen,
	})
}

func quoteList(ids []string) string {
	quoted := make([]string, 0, len(ids))
	for _, id := range ids {
		quoted = append(quoted, fmt.Sprintf("%q", id))
	}
	return strings.Join(quoted, ", ")
}

// listenLoop binds a notification listener address, attaches it at the
// server (which drains any alerts parked in the client's mailbox while it
// was offline) and prints incoming notifications until interrupted.
func listenLoop(ctx context.Context, recep *greenstone.Receptionist, listenAddr, client, server, host string) error {
	ch, closeFn, err := recep.ListenForNotifications(listenAddr)
	if err != nil {
		return err
	}
	defer func() { _ = closeFn() }()
	if err := recep.AttachNotifications(ctx, host, client, listenAddr); err != nil {
		return fmt.Errorf("attach notifier at %s: %w", server, err)
	}
	defer func() {
		// Detach on exit so subsequent alerts park server-side instead of
		// being pushed at a dead address.
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = recep.DetachNotifications(dctx, host, client)
	}()
	fmt.Printf("listening for notifications on %s as client %q (ctrl-c to stop)\n", listenAddr, client)
	fmt.Println("alerts parked while offline are delivered first; on exit, new alerts park at the server")
	for {
		select {
		case <-ctx.Done():
			return nil
		case n := <-ch:
			ev := n.Event
			if n.Composite != "" {
				fmt.Printf("[%s] composite %s alert: %s (%d contributing events) via profile %s\n",
					time.Now().Format("15:04:05"), n.Composite, ev.Collection, len(n.Contributing), n.ProfileID)
				for _, cev := range n.Contributing {
					fmt.Printf("    %s %s at %s\n", cev.Type, cev.Collection, cev.OccurredAt.Format("15:04:05"))
				}
				continue
			}
			fmt.Printf("[%s] %s: %s (build %d, %d docs) via profile %s\n",
				time.Now().Format("15:04:05"), ev.Type, ev.Collection, ev.BuildVersion, len(ev.Docs), n.ProfileID)
			for _, d := range ev.Docs {
				title := ""
				if vs := d.Metadata["dc.Title"]; len(vs) > 0 {
					title = vs[0]
				}
				fmt.Printf("    doc %s %s\n", d.ID, title)
			}
		}
	}
}
