package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/logging"
)

// cmdLogs pulls an on-demand flight-recorder bundle from a server's ops
// endpoint (GET /debug/flightrecorder, docs/LOGGING.md) and renders the
// retained ring records as logfmt lines — the operator's view into the
// black box without waiting for a health-triggered capture.
func cmdLogs(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("logs", flag.ExitOnError)
	ops := fs.String("ops", "127.0.0.1:8080", "ops endpoint address of a gs-server or gds-server (-metrics-addr)")
	component := fs.String("component", "", "only records from this component (core, delivery, gds, replica, health)")
	minLevel := fs.String("level", "debug", "only records at or above this level: debug, info, warn or error")
	traceID := fs.String("trace", "", "only records carrying this trace ID (correlate with `gs-client trace`)")
	reason := fs.String("reason", "", "reason string recorded in the bundle header (default \"manual\")")
	raw := fs.Bool("raw", false, "emit the bundle verbatim as JSONL instead of rendering (pipe to a file for archival)")
	_ = fs.Parse(args)

	lvl, err := logging.ParseLevel(*minLevel)
	if err != nil {
		return err
	}
	q := url.Values{}
	if *reason != "" {
		q.Set("reason", *reason)
	}
	u := url.URL{Scheme: "http", Host: *ops, Path: "/debug/flightrecorder", RawQuery: q.Encode()}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u.String(), resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if *raw {
		_, err = os.Stdout.Write(body)
		return err
	}
	d, err := logging.ParseJSONL(body)
	if err != nil {
		return err
	}

	fmt.Printf("bundle #%d  %s  reason=%s  %d records across %s\n",
		d.Seq,
		time.Unix(0, d.TakenUnixNano).Format("2006-01-02 15:04:05.000"),
		d.Reason,
		len(d.Records),
		strings.Join(d.Components(), ", "))
	printed := 0
	for _, r := range d.Records {
		if *component != "" && r.Component != *component {
			continue
		}
		if *traceID != "" && r.TraceID != *traceID {
			continue
		}
		if rl, err := logging.ParseLevel(r.Level); err == nil && rl < lvl {
			continue
		}
		printed++
		var b strings.Builder
		fmt.Fprintf(&b, "%s %-5s %-8s %s",
			time.Unix(0, r.TimeUnixNano).Format("15:04:05.000"),
			r.Level, r.Component, r.Msg)
		for _, a := range r.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		if r.TraceID != "" {
			fmt.Fprintf(&b, " trace_id=%s", r.TraceID)
		}
		fmt.Println(b.String())
	}
	if printed != len(d.Records) {
		fmt.Printf("%d of %d records shown\n", printed, len(d.Records))
	}
	if n := len(d.TraceIDs); n > 0 {
		fmt.Printf("%d traces retained at capture time (inspect with `gs-client trace -ops %s`)\n", n, *ops)
	}
	return nil
}
