package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/trace"
)

// cmdTrace fetches assembled traces from a server's ops endpoint (the
// /traces handler mounted by -trace-sample / -trace) and renders each as an
// indented span tree with per-span timing offsets.
func cmdTrace(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	ops := fs.String("ops", "127.0.0.1:8080", "ops endpoint address of a gs-server (-metrics-addr) or gds-server (-metrics-addr) with tracing enabled")
	minMs := fs.Float64("min-ms", 0, "only traces at least this long end-to-end, in milliseconds")
	class := fs.String("class", "", "only traces containing a span of this QoS class")
	stage := fs.String("stage", "", "only traces containing this stage (publish, route-hop, match, composite, qos, queue-wait, flush, notify, replica-apply)")
	limit := fs.Int("limit", 20, "max traces printed, most recent first")
	_ = fs.Parse(args)

	q := url.Values{}
	if *minMs > 0 {
		q.Set("min_ms", strconv.FormatFloat(*minMs, 'f', -1, 64))
	}
	if *class != "" {
		q.Set("class", *class)
	}
	if *stage != "" {
		q.Set("stage", *stage)
	}
	if *limit > 0 {
		q.Set("limit", strconv.Itoa(*limit))
	}
	u := url.URL{Scheme: "http", Host: *ops, Path: "/traces", RawQuery: q.Encode()}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u.String(), resp.Status)
	}
	var payload struct {
		Traces  []*trace.Trace `json:"traces"`
		Dropped int64          `json:"dropped_spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return fmt.Errorf("decode /traces response: %w", err)
	}

	if len(payload.Traces) == 0 {
		fmt.Println("no traces (is the server tracing? gs-server -trace-sample / gds-server -trace)")
		return nil
	}
	for i, t := range payload.Traces {
		if i > 0 {
			fmt.Println()
		}
		printTrace(t)
	}
	fmt.Printf("\n%d traces", len(payload.Traces))
	if payload.Dropped > 0 {
		fmt.Printf(" (%d spans dropped ring-side; raise -trace-capacity for longer retention)", payload.Dropped)
	}
	fmt.Println()
	return nil
}

// printTrace renders one span tree. Spans whose parent is missing (dropped
// from the ring) print at top level marked with "~" so partial traces stay
// readable instead of disappearing.
func printTrace(t *trace.Trace) {
	status := "complete"
	if !t.Complete {
		status = "incomplete"
	}
	fmt.Printf("trace %s  %s  e2e %s  %d spans  %s\n",
		t.TraceID,
		time.Unix(0, t.StartUnixNano).Format("15:04:05.000"),
		formatDur(t.Duration()),
		len(t.Spans),
		status)

	byID := make(map[string]*trace.SpanRecord, len(t.Spans))
	children := make(map[string][]*trace.SpanRecord, len(t.Spans))
	for _, s := range t.Spans {
		byID[s.SpanID] = s
	}
	var roots []*trace.SpanRecord
	for _, s := range t.Spans {
		if s.ParentID != "" {
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], s)
				continue
			}
		}
		roots = append(roots, s)
	}
	byStart := func(spans []*trace.SpanRecord) {
		sort.Slice(spans, func(i, j int) bool { return spans[i].StartUnixNano < spans[j].StartUnixNano })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}
	var walk func(s *trace.SpanRecord, depth int)
	walk = func(s *trace.SpanRecord, depth int) {
		printSpan(s, t.StartUnixNano, depth, s.ParentID != "" && byID[s.ParentID] == nil)
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
}

func printSpan(s *trace.SpanRecord, traceStart int64, depth int, orphan bool) {
	marker := ""
	if orphan {
		marker = "~" // parent span missing: dropped from the ring
	}
	var extra []string
	if s.Service != "" {
		extra = append(extra, "svc="+s.Service)
	}
	if s.Class != "" {
		extra = append(extra, "class="+s.Class)
	}
	for _, a := range s.Attrs {
		extra = append(extra, a.Key+"="+a.Value)
	}
	if s.Retained {
		extra = append(extra, "retained")
	}
	fmt.Printf("  %s%s%-14s +%-9s %-9s %s\n",
		strings.Repeat("  ", depth-1),
		marker,
		s.Name,
		formatDur(time.Duration(s.StartUnixNano-traceStart)),
		formatDur(s.Duration()),
		strings.Join(extra, " "))
}

// formatDur renders durations compactly at microsecond-ish precision.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
