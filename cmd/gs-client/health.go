package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/gsalert/gsalert/internal/health"
)

// cmdHealth fetches /healthz (and /readyz) from a server's ops endpoint (the
// handlers mounted by -health) and renders the component/rule breakdown in
// the same style as cmdTrace.
func cmdHealth(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	ops := fs.String("ops", "127.0.0.1:8080", "ops endpoint address of a gs-server (-metrics-addr/-stats-addr) or gds-server (-metrics-addr) started with -health")
	showReady := fs.Bool("ready", true, "also probe /readyz and print the readiness verdict")
	firingOnly := fs.Bool("firing", false, "only print rules that are pending or firing")
	_ = fs.Parse(args)

	st, code, err := fetchHealthz(ctx, *ops)
	if err != nil {
		return err
	}

	fmt.Printf("health %s  %s  (/healthz %d)\n", *ops, st.State, code)
	for _, comp := range st.Components {
		marker := " "
		if comp.State != health.Healthy {
			marker = "!"
		}
		fmt.Printf(" %s%-10s %-9s", marker, comp.Name, comp.State)
		if !comp.Since.IsZero() {
			fmt.Printf("  since %s (%s ago)", comp.Since.Format("15:04:05"), formatDur(time.Since(comp.Since).Truncate(time.Second)))
		}
		fmt.Println()
	}
	shown := 0
	for _, r := range st.Rules {
		if *firingOnly && r.State == health.RuleInactive {
			continue
		}
		shown++
		var extra []string
		if r.Severity != "" {
			extra = append(extra, "severity="+r.Severity)
		}
		extra = append(extra, fmt.Sprintf("value=%g", r.Value))
		fmt.Printf("    %-26s %-9s component=%-10s %s\n",
			r.Name, r.State, r.Component, strings.Join(extra, " "))
	}
	if shown == 0 && *firingOnly {
		fmt.Println("    no rules pending or firing")
	}

	if *showReady {
		ready, body, code, err := fetchReadyz(ctx, *ops)
		if err != nil {
			return err
		}
		if ready {
			fmt.Printf("ready %s  ok  (/readyz %d)\n", *ops, code)
		} else {
			fmt.Printf("ready %s  NOT READY  (/readyz %d)\n", *ops, code)
			for _, c := range body.Checks {
				status := "ok"
				if !c.OK {
					status = c.Err
				}
				fmt.Printf("    %-20s %s\n", c.Name, status)
			}
		}
	}
	return nil
}

func fetchHealthz(ctx context.Context, ops string) (health.Status, int, error) {
	var st health.Status
	u := url.URL{Scheme: "http", Host: ops, Path: "/healthz"}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return st, 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return st, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	// 503 is a valid answer (critical): still carries the full status body.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return st, resp.StatusCode, fmt.Errorf("GET %s: %s (is the server running with -health?)", u.String(), resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, resp.StatusCode, fmt.Errorf("decode /healthz response: %w", err)
	}
	return st, resp.StatusCode, nil
}

type readyzBody struct {
	Ready  bool                     `json:"ready"`
	Checks []health.ReadinessResult `json:"checks"`
}

func fetchReadyz(ctx context.Context, ops string) (bool, readyzBody, int, error) {
	var body readyzBody
	u := url.URL{Scheme: "http", Host: ops, Path: "/readyz"}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return false, body, 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, body, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusOK {
		return true, body, resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, body, resp.StatusCode, fmt.Errorf("decode /readyz response: %w", err)
	}
	return false, body, resp.StatusCode, nil
}
