// Command docs-check keeps the documentation honest. It verifies that:
//
//   - every package directory under internal/ appears in the README's
//     package table, and every table row names an existing directory;
//   - every Go package in the repository (internal/..., cmd/..., examples/
//     and the root) carries a godoc package comment;
//   - every markdown file under docs/ is linked from the README;
//   - experiment references hold: any Go file mentioning EXPERIMENTS.md
//     requires docs/EXPERIMENTS.md to exist, and every experiment id
//     ("experiment E7") cited in Go sources must have a "## E7" section
//     there — so a dangling experiment-doc reference can never regress.
//
// It prints one line per violation and exits non-zero if any were found.
// Run it as `make docs-check`; CI runs it on every push.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	os.Exit(run("."))
}

func run(root string) int {
	var problems []string
	complain := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "docs-check: %v\n", err)
		return 1
	}

	checkPackageTable(root, string(readme), complain)
	checkDocComments(root, complain)
	checkDocsLinked(root, string(readme), complain)
	checkExperimentRefs(root, complain)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "docs-check: %s\n", p)
		}
		fmt.Fprintf(os.Stderr, "docs-check: %d problem(s)\n", len(problems))
		return 1
	}
	fmt.Println("docs-check: README package table, package comments, docs/ links and experiment references are consistent")
	return 0
}

// tableRowRe matches README package-table rows like:
//
//	| `internal/profile` | profile language ... |
var tableRowRe = regexp.MustCompile("(?m)^\\|\\s*`(internal/[a-z0-9_/-]+)`")

// checkPackageTable cross-checks README's package table with internal/.
func checkPackageTable(root, readme string, complain func(string, ...any)) {
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		complain("reading internal/: %v", err)
		return
	}
	dirs := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			dirs["internal/"+e.Name()] = true
		}
	}
	rows := make(map[string]bool)
	for _, m := range tableRowRe.FindAllStringSubmatch(readme, -1) {
		rows[m[1]] = true
	}
	for d := range dirs {
		if !rows[d] {
			complain("README package table is missing a row for %s", d)
		}
	}
	for r := range rows {
		if !dirs[r] {
			complain("README package table lists %s, which does not exist", r)
		}
	}
}

// checkDocComments verifies every package has a godoc package comment.
func checkDocComments(root string, complain func(string, ...any)) {
	var pkgDirs []string
	for _, base := range []string{"internal", "cmd", "examples"} {
		entries, err := os.ReadDir(filepath.Join(root, base))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				pkgDirs = append(pkgDirs, filepath.Join(base, e.Name()))
			}
		}
	}
	pkgDirs = append(pkgDirs, ".")
	sort.Strings(pkgDirs)

	fset := token.NewFileSet()
	for _, dir := range pkgDirs {
		files, err := filepath.Glob(filepath.Join(root, dir, "*.go"))
		if err != nil || len(files) == 0 {
			continue
		}
		documented := false
		any := false
		for _, f := range files {
			// The root directory holds only the external benchmark package;
			// _test files carry its doc comment.
			if dir != "." && strings.HasSuffix(f, "_test.go") {
				continue
			}
			any = true
			parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				complain("parsing %s: %v", f, err)
				continue
			}
			if parsed.Doc != nil && strings.TrimSpace(parsed.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if any && !documented {
			complain("package %s has no godoc package comment", dir)
		}
	}
}

// experimentIDRe matches experiment citations in Go sources, e.g.
// "experiment E7" or "experiments E1".
var experimentIDRe = regexp.MustCompile(`(?i)\bexperiments?\s+(E\d+)\b`)

// experimentHeadingRe matches the index sections of docs/EXPERIMENTS.md.
var experimentHeadingRe = regexp.MustCompile(`(?m)^## (E\d+)\b`)

// checkExperimentRefs verifies that experiment references from Go sources
// resolve: a mention of EXPERIMENTS.md requires docs/EXPERIMENTS.md to
// exist, and every cited experiment id must have a section there.
func checkExperimentRefs(root string, complain func(string, ...any)) {
	type ref struct{ file, id string }
	var mentionsDoc []string
	var ids []ref
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		if strings.Contains(string(raw), "EXPERIMENTS.md") {
			mentionsDoc = append(mentionsDoc, rel)
		}
		for _, m := range experimentIDRe.FindAllStringSubmatch(string(raw), -1) {
			ids = append(ids, ref{file: rel, id: strings.ToUpper(m[1])})
		}
		return nil
	})
	if err != nil {
		complain("scanning for experiment references: %v", err)
		return
	}
	if len(mentionsDoc) == 0 && len(ids) == 0 {
		return
	}
	expPath := filepath.Join(root, "docs", "EXPERIMENTS.md")
	raw, err := os.ReadFile(expPath)
	if err != nil {
		for _, f := range mentionsDoc {
			complain("%s references EXPERIMENTS.md, but docs/EXPERIMENTS.md does not exist", f)
		}
		if len(mentionsDoc) == 0 {
			complain("Go sources cite experiment ids, but docs/EXPERIMENTS.md does not exist")
		}
		return
	}
	have := make(map[string]bool)
	for _, m := range experimentHeadingRe.FindAllStringSubmatch(string(raw), -1) {
		have[strings.ToUpper(m[1])] = true
	}
	complained := make(map[string]bool)
	for _, r := range ids {
		if have[r.id] || complained[r.id] {
			continue
		}
		complained[r.id] = true
		complain("%s cites experiment %s, which has no \"## %s\" section in docs/EXPERIMENTS.md", r.file, r.id, r.id)
	}
}

// checkDocsLinked verifies every file under docs/ is referenced by README.
func checkDocsLinked(root, readme string, complain func(string, ...any)) {
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return
	}
	for _, d := range docs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		if !strings.Contains(readme, rel) {
			complain("%s is not linked from README.md", rel)
		}
	}
}
