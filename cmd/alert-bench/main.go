// Command alert-bench runs the experiment suite of EXPERIMENTS.md and
// prints the result tables: build overhead (E1), GDS scalability (E2),
// routing comparison on fragmented networks (E3), auxiliary-profile chains
// (E5), partition recovery (E6), lossy flooding (E7), and continuous-search
// fidelity (E8). The E4 filter-engine throughput comparison lives in the Go
// benchmarks (go test -bench=BenchmarkFilterMatching).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed = flag.Int64("seed", 2005, "random seed for all experiments")
		only = flag.String("only", "", "comma-separated experiment ids to run (e1,e2,e3,e5,e6,e7,e8,e9); empty = all")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type step struct {
		id  string
		run func() (string, error)
	}
	steps := []step{
		{"e1", func() (string, error) {
			t, err := sim.BuildOverheadTable([]int{100, 1000, 5000}, []int{0, 100, 1000, 10000}, 3, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e2", func() (string, error) {
			t, err := sim.GDSScaleTable([]int{10, 50, 100, 250, 1000}, []int{2, 4, 8}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e3", func() (string, error) {
			t, err := sim.RoutingComparisonTable(64, []float64{0, 0.3, 0.6, 0.9}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e5", func() (string, error) {
			t, err := sim.AuxChainTable([]int{1, 2, 3, 4, 5}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e6", func() (string, error) {
			r, err := sim.RunPartitionRecovery(5, *seed)
			if err != nil {
				return "", err
			}
			t := metrics.NewTable("E6 — partition recovery (rebuilds under a cut super/sub link)",
				"cycles", "notifs during cut", "notifs after heal", "peak queue")
			t.AddRow(r.Cycles, r.DuringPartition, r.AfterHeal, r.QueuedPeak)
			return t.Render(), nil
		}},
		{"e7", func() (string, error) {
			t, err := sim.LossTable(24, 10, []float64{0, 0.01, 0.05, 0.1, 0.2}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e9", func() (string, error) {
			t, err := sim.MulticastAblationTable(32, 10, []int{1, 4, 8, 16, 31}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e8", func() (string, error) {
			r, err := sim.RunContinuousSearch(2000, *seed)
			if err != nil {
				return "", err
			}
			t := metrics.NewTable("E8 — continuous search & watch-this fidelity",
				"docs", "search hits", "alerted docs", "agreement", "watch alerts", "watch expected")
			t.AddRow(r.Docs, r.SearchHits, r.AlertedDocs, fmt.Sprintf("%v", r.Agreement), r.WatchAlerts, r.WatchExpected)
			return t.Render(), nil
		}},
	}

	for _, s := range steps {
		if !selected(s.id) {
			continue
		}
		out, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "alert-bench: %s: %v\n", s.id, err)
			return 1
		}
		fmt.Println(out)
	}
	return 0
}
