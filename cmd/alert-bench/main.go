// Command alert-bench runs the experiment suite of docs/EXPERIMENTS.md
// and prints the result tables: build overhead (E1), GDS scalability (E2),
// routing comparison on fragmented networks (E3), auxiliary-profile chains
// (E5), partition recovery (E6), lossy flooding (E7), continuous-search
// fidelity (E8), dissemination ablation (E9), delivery across
// disconnect/reconnect (E10), delivery throughput (E11), the
// content-routing dissemination ladder (E12), composite/temporal alerting
// (E13), replication failover (E14), QoS overload degradation (E15) and
// the self-alerting health plane (E18).
// The E4 filter-engine throughput comparison lives in the Go benchmarks
// (go test -bench=BenchmarkFilterMatching).
//
// -throughput runs only the E11 delivery-throughput sweep, with
// -throughput-notifs/-throughput-clients/-delivery-shards controlling the
// load shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/gsalert/gsalert/internal/metrics"
	"github.com/gsalert/gsalert/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed = flag.Int64("seed", 2005, "random seed for all experiments")
		only = flag.String("only", "", "comma-separated experiment ids to run (e1,e2,e3,e5,e6,e7,e8,e9,e10,e11,e12,e13,e14,e15,e18); empty = all")

		throughput  = flag.Bool("throughput", false, "run only the delivery-throughput sweep (E11)")
		tpNotifs    = flag.Int("throughput-notifs", 50000, "notifications pushed per throughput mode")
		tpClients   = flag.Int("throughput-clients", 64, "destination clients in the throughput sweep")
		shardsAflag = flag.String("delivery-shards", "1,4,16", "comma-separated shard counts for the throughput sweep")
	)
	flag.Parse()

	shardCounts, err := parseShards(*shardsAflag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alert-bench: %v\n", err)
		return 1
	}
	if *throughput {
		t, err := sim.DeliveryThroughputTable(*tpNotifs, *tpClients, shardCounts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alert-bench: throughput: %v\n", err)
			return 1
		}
		fmt.Println(t.Render())
		return 0
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type step struct {
		id  string
		run func() (string, error)
	}
	steps := []step{
		{"e1", func() (string, error) {
			t, err := sim.BuildOverheadTable([]int{100, 1000, 5000}, []int{0, 100, 1000, 10000}, 3, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e2", func() (string, error) {
			t, err := sim.GDSScaleTable([]int{10, 50, 100, 250, 1000}, []int{2, 4, 8}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e3", func() (string, error) {
			t, err := sim.RoutingComparisonTable(64, []float64{0, 0.3, 0.6, 0.9}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e5", func() (string, error) {
			t, err := sim.AuxChainTable([]int{1, 2, 3, 4, 5}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e6", func() (string, error) {
			r, err := sim.RunPartitionRecovery(5, *seed)
			if err != nil {
				return "", err
			}
			t := metrics.NewTable("E6 — partition recovery (rebuilds under a cut super/sub link)",
				"cycles", "notifs during cut", "notifs after heal", "peak queue")
			t.AddRow(r.Cycles, r.DuringPartition, r.AfterHeal, r.QueuedPeak)
			return t.Render(), nil
		}},
		{"e7", func() (string, error) {
			t, err := sim.LossTable(24, 10, []float64{0, 0.01, 0.05, 0.1, 0.2}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e9", func() (string, error) {
			t, err := sim.MulticastAblationTable(32, 10, []int{1, 4, 8, 16, 31}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e8", func() (string, error) {
			r, err := sim.RunContinuousSearch(2000, *seed)
			if err != nil {
				return "", err
			}
			t := metrics.NewTable("E8 — continuous search & watch-this fidelity",
				"docs", "search hits", "alerted docs", "agreement", "watch alerts", "watch expected")
			t.AddRow(r.Docs, r.SearchHits, r.AlertedDocs, fmt.Sprintf("%v", r.Agreement), r.WatchAlerts, r.WatchExpected)
			return t.Render(), nil
		}},
		{"e10", func() (string, error) {
			t, err := sim.DeliveryRecoveryTable([]int{1, 5, 25, 100}, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e11", func() (string, error) {
			t, err := sim.DeliveryThroughputTable(*tpNotifs, *tpClients, shardCounts)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e12", func() (string, error) {
			t, err := sim.ContentRoutingTable(16, 4, 5, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e13", func() (string, error) {
			t, err := sim.CompositeAlertsTable(16, 4, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e14", func() (string, error) {
			t, err := sim.ReplicaFailoverTable(16, 6, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e15", func() (string, error) {
			t, err := sim.QoSOverloadTable(16, 30, 3, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"e18", func() (string, error) {
			t, err := sim.HealthTable(8, 8, 2, 4, *seed)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
	}

	for _, s := range steps {
		if !selected(s.id) {
			continue
		}
		out, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "alert-bench: %s: %v\n", s.id, err)
			return 1
		}
		fmt.Println(out)
	}
	return 0
}

// parseShards parses a comma-separated shard-count list.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -delivery-shards entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-delivery-shards is empty")
	}
	return out, nil
}
