// Command bench-json converts `go test -bench` output into the
// machine-readable BENCH_results.json that seeds the repository's
// performance trajectory: benchmark name → ns/op, B/op, allocs/op, plus
// any custom metrics (msgs/event, notifs/sec, ...). It reads the benchmark
// output on stdin and writes JSON to -o (default stdout):
//
//	go test -run XXX -bench . -benchmem . | go run ./cmd/bench-json -o BENCH_results.json
//
// Run it via `make bench-json`; CI runs it as a non-blocking step and
// uploads the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// output is the file layout: environment header plus the benchmark list.
type output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench-json: no benchmark lines found on stdin")
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *outPath == "" {
		_, _ = os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*outPath, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bench-json: wrote %d benchmark(s) to %s\n", len(out.Benchmarks), *outPath)
}

// parse consumes `go test -bench` output. Benchmark lines look like:
//
//	BenchmarkName/sub=1-8   928868   198.1 ns/op   64 B/op   2 allocs/op   34.5 msgs/event
//
// Header lines (goos/goarch/pkg/cpu) are captured; everything else (PASS,
// ok, test logs) is ignored.
func parse(sc *bufio.Scanner) (*output, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	out := &output{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		r := result{
			Name:       trimProcSuffix(fields[0]),
			Iterations: iters,
		}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		out.Benchmarks = append(out.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool {
		return out.Benchmarks[i].Name < out.Benchmarks[j].Name
	})
	return out, nil
}

// trimProcSuffix drops the trailing -GOMAXPROCS ("BenchmarkX-8" → the
// stable name "BenchmarkX"), keeping names comparable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
