// Command gds-server runs one Greenstone Directory Service node (paper
// §4.1/§6) over HTTP. Nodes form a stratum tree; give non-root nodes their
// parent's identity and address.
//
// Example of a two-node tree:
//
//	gds-server -id gds-root -addr 127.0.0.1:7001 -stratum 1
//	gds-server -id gds-nz   -addr 127.0.0.1:7002 -stratum 2 \
//	           -parent-id gds-root -parent-addr 127.0.0.1:7001
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id         = flag.String("id", "gds-1", "node identifier")
		addr       = flag.String("addr", "127.0.0.1:7001", "listen address")
		stratum    = flag.Int("stratum", 1, "stratum of this node (1 = primary)")
		parentID   = flag.String("parent-id", "", "parent node identifier (non-root nodes)")
		parentAddr = flag.String("parent-addr", "", "parent node address (non-root nodes)")
		dedupCap   = flag.Int("dedup-capacity", event.DefaultDedupCapacity, "message-ID dedup window (IDs remembered); larger windows cost ~100 B per ID but tolerate longer broadcast echo delays, smaller ones risk relaying late duplicates")
	)
	flag.Parse()

	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()

	node, err := gds.NewNode(*id, *addr, *stratum, tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gds-server: %v\n", err)
		return 1
	}
	defer func() { _ = node.Close() }()
	if *dedupCap != event.DefaultDedupCapacity {
		node.SetDedupCapacity(*dedupCap)
	}

	if *parentAddr != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := node.AttachToParent(ctx, *parentID, *parentAddr)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gds-server: attach to parent: %v\n", err)
			return 1
		}
		fmt.Printf("gds-server %s (stratum %d) attached to %s at %s\n", *id, *stratum, *parentID, *parentAddr)
	} else {
		fmt.Printf("gds-server %s (stratum %d) running as root\n", *id, *stratum)
	}
	fmt.Printf("listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return 0
}
