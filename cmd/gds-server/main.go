// Command gds-server runs one Greenstone Directory Service node (paper
// §4.1/§6) over HTTP. Nodes form a stratum tree; give non-root nodes their
// parent's identity and address.
//
// Example of a two-node tree:
//
//	gds-server -id gds-root -addr 127.0.0.1:7001 -stratum 1
//	gds-server -id gds-nz   -addr 127.0.0.1:7002 -stratum 2 \
//	           -parent-id gds-root -parent-addr 127.0.0.1:7001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id         = flag.String("id", "gds-1", "node identifier")
		addr       = flag.String("addr", "127.0.0.1:7001", "listen address")
		stratum    = flag.Int("stratum", 1, "stratum of this node (1 = primary)")
		parentID   = flag.String("parent-id", "", "parent node identifier (non-root nodes)")
		parentAddr = flag.String("parent-addr", "", "parent node address (non-root nodes)")
		dedupCap   = flag.Int("dedup-capacity", event.DefaultDedupCapacity, "message-ID dedup window (IDs remembered); larger windows cost ~100 B per ID but tolerate longer broadcast echo delays, smaller ones risk relaying late duplicates")

		// Observability knobs (internal/obs, docs/OBSERVABILITY.md).
		metricsAddr  = flag.String("metrics-addr", "", "serve the Prometheus metric catalog over HTTP at this address (GET /metrics, plus the node snapshot as JSON at GET /stats); empty disables")
		pushURL      = flag.String("metrics-push-url", "", "push gzip'd Prometheus snapshots to this HTTP sink; empty disables")
		pushInterval = flag.Duration("metrics-push-interval", 15*time.Second, "interval between pushed metric snapshots")
		pushMaxBps   = flag.Int("metrics-push-max-bps", 0, "bandwidth cap for pushed snapshots in compressed bytes/sec; 0 = unlimited")

		// Tracing knobs (internal/trace, docs/TRACING.md). A directory node
		// never samples — it records route-hop spans for contexts the origin
		// server already sampled — so the only decisions here are on/off and
		// ring size.
		traceOn  = flag.Bool("trace", false, "record route-hop spans for sampled events passing through this node, served at GET /traces on the metrics endpoint")
		traceCap = flag.Int("trace-capacity", trace.DefaultCapacity, "span slots in the in-memory trace ring (drop-oldest)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the metrics endpoint (docs/OBSERVABILITY.md)")

		// Structured-logging knobs (internal/logging, docs/LOGGING.md).
		logLevel  = flag.String("log-level", "info", "minimum structured-log level kept: debug, info, warn, error or off")
		logRing   = flag.Int("log-ring", logging.DefaultRingSize, "per-component flight-ring capacity in records (drop-oldest)")
		flightDir = flag.String("flight-dir", "", "directory for post-mortem flight bundles written when a health rule turns critical; empty keeps captures on-demand only (GET /debug/flightrecorder)")

		// Health-plane knobs (internal/health, docs/HEALTH.md). A directory
		// node has no pipeline to dogfood meta-alerts into, so the plane here
		// is /healthz + /readyz + ALERTS series only.
		healthOn    = flag.Bool("health", false, "evaluate health rules against the node registry and serve /healthz + /readyz on the metrics endpoint; implied by -health-rules")
		healthRules = flag.String("health-rules", "", "health rule file (docs/HEALTH.md grammar); empty = built-in defaults")
		healthTick  = flag.Duration("health-tick", 10*time.Second, "health rule evaluation cadence")
	)
	flag.Parse()

	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()

	node, err := gds.NewNode(*id, *addr, *stratum, tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gds-server: %v\n", err)
		return 1
	}
	defer func() { _ = node.Close() }()
	if *dedupCap != event.DefaultDedupCapacity {
		node.SetDedupCapacity(*dedupCap)
	}

	logLvl, err := logging.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gds-server: %v\n", err)
		return 1
	}
	rec := logging.NewRecorder(logging.Config{Level: logLvl, RingSize: *logRing, Sink: os.Stderr})
	node.SetLog(rec.For("gds"))

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(trace.Config{
			Service:   *id,
			Collector: trace.NewCollector(*traceCap),
		})
		node.SetTracer(tracer)
	}

	// Observability: the node's dissemination counters, per-link digest
	// tables and transport wire counters, scrapeable and/or pushed.
	reg := obs.NewRegistry()
	obs.RegisterGDSNode(reg, node)
	obs.RegisterHTTPTransport(reg, tr)
	obs.RegisterGoRuntime(reg)
	obs.RegisterLogging(reg, rec)
	fcfg := logging.FlightConfig{Recorder: rec, Dir: *flightDir, Stats: func() any { return node.Snapshot() }}
	var opts []obs.ServeOption
	if tracer.Enabled() {
		obs.RegisterTrace(reg, tracer.Collector())
		opts = append(opts, obs.WithTraces(tracer.Collector()))
		col := tracer.Collector()
		fcfg.TraceIDs = func() []string {
			traces := col.Traces(trace.Filter{})
			ids := make([]string, 0, len(traces))
			for _, t := range traces {
				ids = append(ids, t.TraceID)
			}
			return ids
		}
	}
	flight := logging.NewFlightRecorder(fcfg)
	obs.RegisterFlight(reg, flight)
	opts = append(opts, obs.WithFlightRecorder(flight))
	if *pprofOn {
		opts = append(opts, obs.WithPprof())
	}
	if *healthRules != "" {
		*healthOn = true
	}
	var parentAttached atomic.Bool
	if *healthOn {
		rules := health.DefaultRules()
		if *healthRules != "" {
			raw, err := os.ReadFile(*healthRules)
			if err == nil {
				rules, err = health.ParseRules(string(raw))
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "gds-server: health rules: %v\n", err)
				return 1
			}
		}
		hopts := health.Options{Log: rec.For("health")}
		if *flightDir != "" {
			hopts.OnTransition = func(tr health.Transition) {
				if tr.To != health.Critical {
					return
				}
				if path, err := flight.DumpToDir("critical:" + tr.Component); err != nil {
					fmt.Fprintf(os.Stderr, "gds-server: flight dump: %v\n", err)
				} else {
					fmt.Printf("gds-server %s flight bundle captured: %s\n", *id, path)
				}
			}
		}
		eng := health.NewEngine(reg, rules, hopts)
		eng.Register(reg)
		eng.AddReadiness("node", func() error { return nil })
		if *parentAddr != "" {
			eng.AddReadiness("parent-attached", func() error {
				if !parentAttached.Load() {
					return errors.New("not attached to parent " + *parentID)
				}
				return nil
			})
		}
		eng.Start(*healthTick)
		defer eng.Close()
		opts = append(opts, health.Endpoints(eng))
		fmt.Printf("gds-server %s health plane on (%d rules, tick %s)\n", *id, len(rules.Rules), *healthTick)
	}
	if *metricsAddr != "" {
		closeOps, err := obs.ServeOps(*metricsAddr, reg, func() any { return node.Snapshot() }, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gds-server: metrics server: %v\n", err)
			return 1
		}
		defer closeOps()
		fmt.Printf("gds-server %s serving http://%s/metrics\n", *id, *metricsAddr)
	}
	if *pushURL != "" {
		exp, err := obs.NewExporter(reg, obs.ExporterConfig{
			URL:            *pushURL,
			Interval:       *pushInterval,
			MaxBytesPerSec: *pushMaxBps,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gds-server: metrics exporter: %v\n", err)
			return 1
		}
		defer exp.Close()
		fmt.Printf("gds-server %s pushing metrics to %s every %s\n", *id, *pushURL, *pushInterval)
	}

	if *parentAddr != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := node.AttachToParent(ctx, *parentID, *parentAddr)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gds-server: attach to parent: %v\n", err)
			return 1
		}
		parentAttached.Store(true)
		fmt.Printf("gds-server %s (stratum %d) attached to %s at %s\n", *id, *stratum, *parentID, *parentAddr)
	} else {
		fmt.Printf("gds-server %s (stratum %d) running as root\n", *id, *stratum)
	}
	fmt.Printf("listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return 0
}
