// Command gs-server runs one Greenstone server with the alerting service
// integrated (paper §3/§4) over HTTP. The server registers with a GDS node
// for naming and event flooding.
//
// With -demo, the server creates a sample public collection and rebuilds it
// on the given interval so subscribers receive a steady stream of events:
//
//	gs-server -name Hamilton -addr 127.0.0.1:8001 -gds 127.0.0.1:7001 \
//	          -demo -demo-interval 10s
//
// Distributed collections: -sub Host=Collection adds a remote
// sub-collection reference to the demo collection, which triggers auxiliary
// profile forwarding to that host (paper §4.2):
//
//	gs-server -name Hamilton ... -demo -sub London=E
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		name         = flag.String("name", "Hamilton", "server name (network-internal, resolved via the GDS)")
		addr         = flag.String("addr", "127.0.0.1:8001", "listen address")
		gdsAddr      = flag.String("gds", "127.0.0.1:7001", "GDS node address to register with")
		routing      = flag.String("routing", "broadcast", "GDS dissemination mode: broadcast, multicast or content (see docs/ROUTING.md)")
		warmup       = flag.Duration("content-warmup", core.DefaultContentWarmup, "flood-fallback window after entering content routing, while digest advertisements propagate; 0 disables")
		dedupCap     = flag.Int("dedup-capacity", event.DefaultDedupCapacity, "event-ID dedup window (IDs remembered); larger windows cost ~100 B per ID but survive longer broadcast echo delays, smaller ones risk re-delivering late duplicates")
		compTick     = flag.Duration("composite-tick", time.Second, "composite-engine tick interval: bounds digest flush latency and window-GC promptness (see docs/COMPOSITE.md)")
		demo         = flag.Bool("demo", false, "create a demo collection and rebuild it periodically")
		demoName     = flag.String("demo-name", "Demo", "demo collection name")
		demoInterval = flag.Duration("demo-interval", 15*time.Second, "demo rebuild interval")
		subsFlag     = flag.String("sub", "", "comma-separated remote sub-collection refs Host=Collection for the demo collection")

		// Delivery pipeline knobs (internal/delivery).
		dlvShards   = flag.Int("delivery-shards", delivery.DefaultShards, "delivery worker shards (clients hash onto shards)")
		dlvQueue    = flag.Int("delivery-queue-depth", delivery.DefaultQueueDepth, "per-shard delivery queue depth")
		dlvOverflow = flag.String("delivery-overflow", "block", "full-queue policy: block, drop-oldest or spill")
		dlvBatch    = flag.Int("delivery-batch", delivery.DefaultBatchSize, "notifications per delivery batch (flush on size)")
		dlvFlush    = flag.Duration("delivery-flush-interval", delivery.DefaultFlushInterval, "max delivery batching latency (flush on interval)")
		mailboxDir  = flag.String("mailbox-dir", "", "directory for durable per-user mailboxes (WAL); empty = memory only")
		mailboxCap  = flag.Int("mailbox-cap", delivery.DefaultMailboxCap, "max parked notifications per user")
	)
	flag.Parse()

	mode, err := core.ParseRoutingMode(*routing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	// At the config layer zero means "use the default", so translate the
	// flag's explicit 0 ("no warm-up") to the negative sentinel.
	if *warmup == 0 {
		*warmup = -1
	}

	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	overflow, err := delivery.ParseOverflowPolicy(*dlvOverflow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	pipeline, err := delivery.NewPipeline(delivery.Config{
		Shards:        *dlvShards,
		QueueDepth:    *dlvQueue,
		Overflow:      overflow,
		BatchSize:     *dlvBatch,
		FlushInterval: *dlvFlush,
		Dir:           *mailboxDir,
		MailboxCap:    *mailboxCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: delivery pipeline: %v\n", err)
		return 1
	}
	defer func() { _ = pipeline.Close() }()
	if *mailboxDir != "" {
		if n := pipeline.Metrics().Recovered.Value(); n > 0 {
			fmt.Printf("gs-server %s: recovered %d undelivered notifications from %s\n", *name, n, *mailboxDir)
		}
	}

	gdsCli := gds.NewClient(*name, *addr, *gdsAddr, tr)
	store := collection.NewStore(*name)
	svc, err := core.New(core.Config{
		ServerName:    *name,
		ServerAddr:    *addr,
		Transport:     tr,
		GDS:           gdsCli,
		Store:         store,
		Delivery:      pipeline,
		ContentWarmup: *warmup,
		DedupCapacity: *dedupCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	defer func() { _ = svc.Close() }()
	// Composite profiles need the periodic tick for digest flushes and
	// window garbage collection.
	if err := svc.StartCompositeTicker(*compTick); err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: composite ticker: %v\n", err)
		return 1
	}
	srv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name:      *name,
		Addr:      *addr,
		Transport: tr,
		Store:     store,
		Alerting:  svc,
		Resolver:  gdsCli,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	defer func() { _ = srv.Close() }()

	regCtx, regCancel := context.WithTimeout(ctx, 10*time.Second)
	err = gdsCli.Register(regCtx)
	regCancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: GDS registration failed (continuing solitary): %v\n", err)
	} else {
		fmt.Printf("gs-server %s registered with GDS at %s\n", *name, *gdsAddr)
	}

	// Dissemination mode after registration: multicast joins groups and
	// content routing advertises the profile digest through the GDS node.
	if mode != core.RouteBroadcast {
		modeCtx, modeCancel := context.WithTimeout(ctx, 10*time.Second)
		err = svc.SetRoutingMode(modeCtx, mode)
		modeCancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: routing mode %s: %v (reverting to broadcast)\n", mode, err)
			if err := svc.SetRoutingMode(context.Background(), core.RouteBroadcast); err != nil {
				fmt.Fprintf(os.Stderr, "gs-server: revert to broadcast: %v\n", err)
			}
		} else {
			fmt.Printf("gs-server %s disseminating via %s routing\n", *name, mode)
		}
	}

	// The retry queue delivers deferred aux-profile traffic in the
	// background (paper §7 reconnection semantics).
	if err := svc.Retry().Start(2 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: retry queue: %v\n", err)
		return 1
	}
	defer svc.Retry().Stop()

	if *demo {
		if err := runDemo(ctx, srv, *demoName, *subsFlag, *demoInterval); err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: demo: %v\n", err)
			return 1
		}
	}

	fmt.Printf("gs-server %s listening on %s\n", *name, *addr)
	<-ctx.Done()
	fmt.Println("shutting down")
	return 0
}

// runDemo creates the demo collection and starts the rebuild loop.
func runDemo(ctx context.Context, srv *greenstone.Server, collName, subsFlag string, interval time.Duration) error {
	cfg := collection.Config{
		Name:        collName,
		Title:       "Demo Collection",
		Public:      true,
		IndexFields: []string{"dc.Title", "dc.Creator"},
		Classifiers: []string{"dc.Title"},
	}
	for _, ref := range strings.Split(subsFlag, ",") {
		ref = strings.TrimSpace(ref)
		if ref == "" {
			continue
		}
		host, sub, ok := strings.Cut(ref, "=")
		if !ok {
			return fmt.Errorf("bad -sub entry %q (want Host=Collection)", ref)
		}
		cfg.Subs = append(cfg.Subs, collection.SubRef{Host: host, Name: sub})
	}
	if _, err := srv.AddCollection(ctx, cfg); err != nil {
		return err
	}
	build := func(round int) {
		docs := demoDocs(srv.Name(), round)
		if _, _, err := srv.Build(ctx, collName, docs); err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: demo rebuild: %v\n", err)
			return
		}
		fmt.Printf("rebuilt %s.%s (round %d, %d docs)\n", srv.Name(), collName, round, len(docs))
	}
	build(0)
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		round := 1
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				build(round)
				round++
			}
		}
	}()
	return nil
}

func demoDocs(host string, round int) []*collection.Document {
	docs := make([]*collection.Document, 0, 6)
	for i := 0; i < 5; i++ {
		docs = append(docs, &collection.Document{
			ID: fmt.Sprintf("%s-doc-%d", host, i),
			Metadata: map[string][]string{
				"dc.Title":   {fmt.Sprintf("Report %d from %s", i, host)},
				"dc.Creator": {fmt.Sprintf("Author %d", i%3)},
			},
			Content: fmt.Sprintf("report %d body, revision %d, topics digital library alerting", i, round),
			MIME:    "text/plain",
		})
	}
	// One fresh document per round so subscribers see documents-added.
	docs = append(docs, &collection.Document{
		ID:       fmt.Sprintf("%s-new-%d", host, round),
		Metadata: map[string][]string{"dc.Title": {fmt.Sprintf("Bulletin %d", round)}},
		Content:  fmt.Sprintf("bulletin issued in round %d", round),
		MIME:     "text/plain",
	})
	return docs
}
