// Command gs-server runs one Greenstone server with the alerting service
// integrated (paper §3/§4) over HTTP. The server registers with a GDS node
// for naming and event flooding.
//
// With -demo, the server creates a sample public collection and rebuilds it
// on the given interval so subscribers receive a steady stream of events:
//
//	gs-server -name Hamilton -addr 127.0.0.1:8001 -gds 127.0.0.1:7001 \
//	          -demo -demo-interval 10s
//
// Distributed collections: -sub Host=Collection adds a remote
// sub-collection reference to the demo collection, which triggers auxiliary
// profile forwarding to that host (paper §4.2):
//
//	gs-server -name Hamilton ... -demo -sub London=E
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/gsalert/gsalert/internal/collection"
	"github.com/gsalert/gsalert/internal/core"
	"github.com/gsalert/gsalert/internal/delivery"
	"github.com/gsalert/gsalert/internal/event"
	"github.com/gsalert/gsalert/internal/gds"
	"github.com/gsalert/gsalert/internal/greenstone"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/logging"
	"github.com/gsalert/gsalert/internal/obs"
	"github.com/gsalert/gsalert/internal/protocol"
	"github.com/gsalert/gsalert/internal/qos"
	"github.com/gsalert/gsalert/internal/replica"
	"github.com/gsalert/gsalert/internal/trace"
	"github.com/gsalert/gsalert/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		name         = flag.String("name", "Hamilton", "server name (network-internal, resolved via the GDS)")
		addr         = flag.String("addr", "127.0.0.1:8001", "listen address")
		gdsAddr      = flag.String("gds", "127.0.0.1:7001", "GDS node address to register with")
		routing      = flag.String("routing", "broadcast", "GDS dissemination mode: broadcast, multicast or content (see docs/ROUTING.md)")
		warmup       = flag.Duration("content-warmup", core.DefaultContentWarmup, "flood-fallback window after entering content routing, while digest advertisements propagate; 0 disables")
		dedupCap     = flag.Int("dedup-capacity", event.DefaultDedupCapacity, "event-ID dedup window (IDs remembered); larger windows cost ~100 B per ID but survive longer broadcast echo delays, smaller ones risk re-delivering late duplicates")
		compTick     = flag.Duration("composite-tick", time.Second, "composite-engine tick interval: bounds digest flush latency and window-GC promptness (see docs/COMPOSITE.md)")
		demo         = flag.Bool("demo", false, "create a demo collection and rebuild it periodically")
		demoName     = flag.String("demo-name", "Demo", "demo collection name")
		demoInterval = flag.Duration("demo-interval", 15*time.Second, "demo rebuild interval")
		subsFlag     = flag.String("sub", "", "comma-separated remote sub-collection refs Host=Collection for the demo collection")

		// Delivery pipeline knobs (internal/delivery).
		dlvShards   = flag.Int("delivery-shards", delivery.DefaultShards, "delivery worker shards (clients hash onto shards)")
		dlvQueue    = flag.Int("delivery-queue-depth", delivery.DefaultQueueDepth, "per-shard delivery queue depth")
		dlvOverflow = flag.String("delivery-overflow", "block", "full-queue policy: block, drop-oldest or spill")
		dlvBatch    = flag.Int("delivery-batch", delivery.DefaultBatchSize, "notifications per delivery batch (flush on size)")
		dlvFlush    = flag.Duration("delivery-flush-interval", delivery.DefaultFlushInterval, "max delivery batching latency (flush on interval)")
		mailboxDir  = flag.String("mailbox-dir", "", "directory for durable per-user mailboxes (WAL); empty = memory only")
		mailboxCap  = flag.Int("mailbox-cap", delivery.DefaultMailboxCap, "max parked notifications per user")

		// QoS admission-control knobs (internal/qos, docs/QOS.md).
		qosOn        = flag.Bool("qos", false, "enable QoS admission control: per-subscriber and per-collection token-bucket quotas with graceful degradation (normal defers, bulk coalesces into digests; realtime is never shed)")
		qosSubRate   = flag.Float64("qos-subscriber-rate", 100, "sustained notifications/sec each subscriber may receive across non-realtime classes")
		qosSubBurst  = flag.Int("qos-subscriber-burst", 200, "per-subscriber token-bucket capacity; 0 disables the subscriber quota dimension")
		qosCollRate  = flag.Float64("qos-collection-rate", 1000, "sustained events/sec one collection may fan out through non-realtime subscriptions")
		qosCollBurst = flag.Int("qos-collection-burst", 2000, "per-collection token-bucket capacity; 0 disables the collection quota dimension")
		qosBulkEvery = flag.Duration("qos-bulk-digest", qos.DefaultBulkDigestEvery, "coalescing period for over-quota bulk traffic: shed bulk notifications accrue and flush as one digest per period")
		qosWeights   = flag.String("qos-weights", "", "delivery WFQ class weights as realtime:normal:bulk (e.g. 8:4:1); empty = defaults")

		// Replication & ops knobs (internal/replica, docs/REPLICATION.md).
		replListen  = flag.String("replica-listen", "", "replication endpoint to listen on (host:port); primaries accept standby joins here, standbys receive the stream")
		replicaOf   = flag.String("replica-of", "", "run as standby of the primary whose replication endpoint is this address (requires -replica-listen); the server inherits -name, stays unregistered and passive, and serves only after promotion")
		promoteAddr = flag.String("promote", "", "one-shot: order the standby at this replication endpoint to promote to serving primary, then exit")

		// Observability knobs (internal/obs, docs/OBSERVABILITY.md).
		statsAddr    = flag.String("stats-addr", "", "serve ServiceStats (including the Replica* fields) as JSON over HTTP at this address (GET /stats; GET /metrics serves the same catalog as Prometheus text); empty disables")
		metricsAddr  = flag.String("metrics-addr", "", "serve the Prometheus metric catalog over HTTP at this address (GET /metrics, plus the JSON GET /stats); empty disables")
		pushURL      = flag.String("metrics-push-url", "", "push gzip'd Prometheus snapshots to this HTTP sink (e.g. a VictoriaMetrics import endpoint); empty disables")
		pushInterval = flag.Duration("metrics-push-interval", 15*time.Second, "interval between pushed metric snapshots")
		pushMaxBps   = flag.Int("metrics-push-max-bps", 0, "bandwidth cap for pushed snapshots in compressed bytes/sec; 0 = unlimited")

		// Tracing knobs (internal/trace, docs/TRACING.md).
		traceSample = flag.Float64("trace-sample", 0, "head-sampling rate for end-to-end event traces in [0,1]: fraction of publishes recorded as span trees, served at GET /traces on the ops endpoint; 0 disables (with -trace-slow 0)")
		traceSlow   = flag.Duration("trace-slow", 0, "tail-retain threshold: publish roots slower than this are traced even when head sampling passed them over; 0 disables tail retention")
		traceCap    = flag.Int("trace-capacity", trace.DefaultCapacity, "span slots in the in-memory trace ring (drop-oldest)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the ops endpoint (docs/OBSERVABILITY.md)")

		// Structured-logging knobs (internal/logging, docs/LOGGING.md).
		logLevel  = flag.String("log-level", "info", "minimum structured-log level kept: debug, info, warn, error or off; kept records land in the per-component flight rings and (rate-limited) on stderr")
		logRing   = flag.Int("log-ring", logging.DefaultRingSize, "per-component flight-ring capacity in records (drop-oldest)")
		logRate   = flag.Float64("log-stderr-rate", 50, "per-component stderr lines/sec cap (token bucket; suppressed lines stay ring-retained, counted in gsalert_logging_suppressed_total); 0 disables the limiter")
		flightDir = flag.String("flight-dir", "", "directory for post-mortem flight bundles: each health transition into critical writes one JSONL bundle here; empty keeps captures on-demand only (GET /debug/flightrecorder, gs-client logs)")

		// Health-plane knobs (internal/health, docs/HEALTH.md).
		healthOn    = flag.Bool("health", false, "enable the self-alerting health plane: SLO rules evaluated against the local metric registry, /healthz + /readyz on the ops endpoint, ALERTS series, and meta-alert events published into the pipeline; implied by -health-rules")
		healthRules = flag.String("health-rules", "", "health rule file (docs/HEALTH.md grammar); empty = the built-in E15/E16-signature defaults")
		healthTick  = flag.Duration("health-tick", 10*time.Second, "health rule evaluation cadence (scrape-like pull; zero hot-path cost)")
		healthMeta  = flag.Bool("health-alerts", true, "publish each health state transition as a health-alert event into the pipeline (the dogfood; subscribe with event.type = \"health-alert\")")
		readyGDS    = flag.Bool("ready-gds", true, "gate /readyz on successful GDS registration (serving roles only)")
		readyRepl   = flag.Bool("ready-standby", true, "on a standby, gate /readyz on being snapshot-synced with a reachable primary (promotion flips the gate to serving-side checks)")
	)
	flag.Parse()

	if *promoteAddr != "" {
		return runPromote(*promoteAddr)
	}
	if *replicaOf != "" && *replListen == "" {
		fmt.Fprintln(os.Stderr, "gs-server: -replica-of requires -replica-listen")
		return 1
	}

	mode, err := core.ParseRoutingMode(*routing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	// At the config layer zero means "use the default", so translate the
	// flag's explicit 0 ("no warm-up") to the negative sentinel.
	if *warmup == 0 {
		*warmup = -1
	}

	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	overflow, err := delivery.ParseOverflowPolicy(*dlvOverflow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	weights, err := parseClassWeights(*qosWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	logLvl, err := logging.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	// Structured logging: one recorder owns the per-component flight rings;
	// scoped loggers thread through the delivery pipeline, core service,
	// replica roles and the health engine, each behind a single nil/level
	// check on the hot paths (docs/LOGGING.md).
	rec := logging.NewRecorder(logging.Config{
		Level:     logLvl,
		RingSize:  *logRing,
		Sink:      os.Stderr,
		RateLimit: *logRate,
	})
	// Tracing: one collector feeds /traces and the gsalert_trace_* series;
	// the tracer threads through the publish path, delivery pipeline and
	// (on standbys) the replication apply loop.
	var tracer *trace.Tracer
	if *traceSample > 0 || *traceSlow > 0 {
		tracer = trace.New(trace.Config{
			Service:    *name,
			SampleRate: *traceSample,
			SlowRoot:   *traceSlow,
			Collector:  trace.NewCollector(*traceCap),
		})
	}

	pipeline, err := delivery.NewPipeline(delivery.Config{
		Shards:        *dlvShards,
		QueueDepth:    *dlvQueue,
		Overflow:      overflow,
		BatchSize:     *dlvBatch,
		FlushInterval: *dlvFlush,
		Dir:           *mailboxDir,
		MailboxCap:    *mailboxCap,
		ClassWeights:  weights,
		Tracer:        tracer,
		Log:           rec.For("delivery"),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: delivery pipeline: %v\n", err)
		return 1
	}
	defer func() { _ = pipeline.Close() }()
	if *mailboxDir != "" {
		if n := pipeline.Metrics().Recovered.Value(); n > 0 {
			fmt.Printf("gs-server %s: recovered %d undelivered notifications from %s\n", *name, n, *mailboxDir)
		}
	}

	var ctrl *qos.Controller
	if *qosOn {
		ctrl = qos.NewController(qos.Config{
			SubscriberRate:  *qosSubRate,
			SubscriberBurst: *qosSubBurst,
			CollectionRate:  *qosCollRate,
			CollectionBurst: *qosCollBurst,
			BulkDigestEvery: *qosBulkEvery,
		})
	}
	gdsCli := gds.NewClient(*name, *addr, *gdsAddr, tr)
	store := collection.NewStore(*name)
	svc, err := core.New(core.Config{
		ServerName:    *name,
		ServerAddr:    *addr,
		Transport:     tr,
		GDS:           gdsCli,
		Store:         store,
		Delivery:      pipeline,
		ContentWarmup: *warmup,
		DedupCapacity: *dedupCap,
		QoS:           ctrl,
		Tracer:        tracer,
		Log:           rec.For("core"),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	defer func() { _ = svc.Close() }()
	// Composite profiles need the periodic tick for digest flushes and
	// window garbage collection.
	if err := svc.StartCompositeTicker(*compTick); err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: composite ticker: %v\n", err)
		return 1
	}
	srv, err := greenstone.NewServer(greenstone.ServerConfig{
		Name:      *name,
		Addr:      *addr,
		Transport: tr,
		Store:     store,
		Alerting:  svc,
		Resolver:  gdsCli,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: %v\n", err)
		return 1
	}
	defer func() { _ = srv.Close() }()

	standby := *replicaOf != ""
	// recv and gdsRegistered feed the /readyz checks below: a standby is
	// ready when synced with a reachable primary (or promoted to serving);
	// a serving server is ready once registered with the directory.
	var recv *replica.Standby
	var gdsRegistered atomicBool
	if standby {
		// A standby never registers and never advertises: the primary owns
		// the server name until promotion. Promotion (via `gs-server
		// -promote <addr>` or replica.Standby.Promote) registers and
		// re-issues the inherited routing mode itself.
		recv, err = replica.NewStandby(replica.StandbyConfig{
			Service:     svc,
			Transport:   tr,
			ListenAddr:  *replListen,
			PrimaryAddr: *replicaOf,
			GDS:         gdsCli,
			Tracer:      tracer,
			Log:         rec.For("replica"),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: standby: %v\n", err)
			return 1
		}
		defer func() { _ = recv.Close() }()
		// Join with retry (the primary may not be up yet), then heartbeat
		// forever: a probe that finds the stream broken, the primary
		// restarted, or positions diverged rejoins via snapshot resync.
		// Without the loop a single stream break would silently freeze the
		// standby until the operator noticed.
		go func() {
			joined := false
			for !recv.Promoted() {
				opCtx, opCancel := context.WithTimeout(ctx, 10*time.Second)
				var err error
				if !joined {
					if err = recv.Join(opCtx); err == nil {
						joined = true
						fmt.Printf("gs-server %s standing by for %s (stream at %s)\n", *name, *replicaOf, *replListen)
					} else {
						fmt.Fprintf(os.Stderr, "gs-server: standby join: %v (retrying)\n", err)
					}
				} else if err = recv.Heartbeat(opCtx); err != nil {
					fmt.Fprintf(os.Stderr, "gs-server: standby heartbeat: %v (retrying)\n", err)
				}
				opCancel()
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Second):
				}
			}
		}()
	} else {
		regCtx, regCancel := context.WithTimeout(ctx, 10*time.Second)
		err = gdsCli.Register(regCtx)
		regCancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: GDS registration failed (continuing solitary): %v\n", err)
		} else {
			gdsRegistered.set(true)
			fmt.Printf("gs-server %s registered with GDS at %s\n", *name, *gdsAddr)
		}

		// Dissemination mode after registration: multicast joins groups and
		// content routing advertises the profile digest through the GDS node.
		if mode != core.RouteBroadcast {
			modeCtx, modeCancel := context.WithTimeout(ctx, 10*time.Second)
			err = svc.SetRoutingMode(modeCtx, mode)
			modeCancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "gs-server: routing mode %s: %v (reverting to broadcast)\n", mode, err)
				if err := svc.SetRoutingMode(context.Background(), core.RouteBroadcast); err != nil {
					fmt.Fprintf(os.Stderr, "gs-server: revert to broadcast: %v\n", err)
				}
			} else {
				fmt.Printf("gs-server %s disseminating via %s routing\n", *name, mode)
			}
		}

		if *replListen != "" {
			// Primary role: accept a standby and stream every state change
			// to it (docs/REPLICATION.md).
			prim, err := replica.NewPrimary(replica.PrimaryConfig{
				Service:    svc,
				Transport:  tr,
				ListenAddr: *replListen,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "gs-server: replication endpoint: %v\n", err)
				return 1
			}
			defer func() { _ = prim.Close() }()
			fmt.Printf("gs-server %s accepting a standby at %s\n", *name, *replListen)
		}
	}

	// Observability: one registry covers every subsystem; -metrics-addr and
	// -stats-addr serve the same mux (Prometheus /metrics + JSON /stats), and
	// -metrics-push-url starts the self-monitoring push exporter against the
	// same registry.
	reg := obs.NewRegistry()
	obs.RegisterService(reg, svc.Stats)
	obs.RegisterDelivery(reg, pipeline)
	if ctrl != nil {
		obs.RegisterQoS(reg, ctrl)
	}
	obs.RegisterHTTPTransport(reg, tr)
	obs.RegisterGoRuntime(reg)
	obs.RegisterLogging(reg, rec)
	statsJSON := func() any {
		return struct {
			Service  core.ServiceStats
			Delivery delivery.Snapshot
		}{svc.Stats(), pipeline.Metrics().Snapshot()}
	}
	// Flight recorder: post-mortem bundles snapshot the rings plus the
	// /stats payload and (when tracing) the retained-trace index, so one
	// capture joins all three pillars (docs/OBSERVABILITY.md).
	fcfg := logging.FlightConfig{Recorder: rec, Dir: *flightDir, Stats: statsJSON}
	var opts []obs.ServeOption
	if tracer.Enabled() {
		obs.RegisterTrace(reg, tracer.Collector())
		opts = append(opts, obs.WithTraces(tracer.Collector()))
		col := tracer.Collector()
		fcfg.TraceIDs = func() []string {
			traces := col.Traces(trace.Filter{})
			ids := make([]string, 0, len(traces))
			for _, t := range traces {
				ids = append(ids, t.TraceID)
			}
			return ids
		}
	}
	flight := logging.NewFlightRecorder(fcfg)
	obs.RegisterFlight(reg, flight)
	opts = append(opts, obs.WithFlightRecorder(flight))
	if *pprofOn {
		opts = append(opts, obs.WithPprof())
	}

	// Health plane: rules evaluated against this same registry at -health-tick
	// cadence; /healthz + /readyz ride the ops mux, firing rules surface as
	// ALERTS series, and (with -health-alerts) every state transition is
	// published back into the pipeline as a health-alert event. Disabled, it
	// adds zero series and zero publish-path work.
	if *healthRules != "" {
		*healthOn = true
	}
	if *healthOn {
		rules := health.DefaultRules()
		if *healthRules != "" {
			raw, err := os.ReadFile(*healthRules)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gs-server: health rules: %v\n", err)
				return 1
			}
			rules, err = health.ParseRules(string(raw))
			if err != nil {
				fmt.Fprintf(os.Stderr, "gs-server: health rules: %v\n", err)
				return 1
			}
		}
		hopts := health.Options{Log: rec.For("health")}
		hopts.OnTransition = func(tr health.Transition) {
			if tr.To == health.Critical && *flightDir != "" {
				// Post-mortem capture: snapshot the flight rings the moment
				// a component turns critical, while the records that led
				// here still sit in the rings (docs/LOGGING.md).
				if path, err := flight.DumpToDir("critical:" + tr.Component); err != nil {
					fmt.Fprintf(os.Stderr, "gs-server: flight dump: %v\n", err)
				} else {
					fmt.Printf("gs-server %s flight bundle captured: %s\n", *name, path)
				}
			}
			if !*healthMeta {
				return
			}
			a := core.HealthAlert{
				Component: tr.Component,
				From:      tr.From.String(),
				To:        tr.To.String(),
				Rule:      tr.Rule,
				Severity:  tr.Severity,
				Value:     tr.Value,
				At:        tr.At,
			}
			if err := svc.PublishHealthAlert(context.Background(), a); err != nil {
				fmt.Fprintf(os.Stderr, "gs-server: health alert publish: %v\n", err)
			}
		}
		eng := health.NewEngine(reg, rules, hopts)
		eng.Register(reg)
		eng.AddReadiness("pipeline", func() error { return nil })
		if *readyGDS {
			eng.AddReadiness("gds-registered", func() error {
				if standby && !recv.Promoted() {
					// The primary owns the name while this end stands by.
					return nil
				}
				if !gdsRegistered.get() && !(standby && recv.Promoted()) {
					return errors.New("not registered with the GDS")
				}
				return nil
			})
		}
		if standby && *readyRepl {
			eng.AddReadiness("standby-caught-up", func() error {
				if recv.Promoted() {
					return nil // serving now; the gds check takes over
				}
				if !recv.Synced() {
					return errors.New("standby has not applied a snapshot")
				}
				if err := recv.ProbeErr(); err != nil {
					return fmt.Errorf("primary unreachable: %w", err)
				}
				return nil
			})
		}
		eng.Start(*healthTick)
		defer eng.Close()
		opts = append(opts, health.Endpoints(eng))
		fmt.Printf("gs-server %s health plane on (%d rules, tick %s)\n", *name, len(rules.Rules), *healthTick)
	}
	for _, opsAddr := range opsAddrs(*metricsAddr, *statsAddr) {
		closeOps, err := obs.ServeOps(opsAddr, reg, statsJSON, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: ops server: %v\n", err)
			return 1
		}
		defer closeOps()
		fmt.Printf("gs-server %s serving http://%s/metrics and http://%s/stats\n", *name, opsAddr, opsAddr)
	}
	if *pushURL != "" {
		exp, err := obs.NewExporter(reg, obs.ExporterConfig{
			URL:            *pushURL,
			Interval:       *pushInterval,
			MaxBytesPerSec: *pushMaxBps,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: metrics exporter: %v\n", err)
			return 1
		}
		defer exp.Close()
		fmt.Printf("gs-server %s pushing metrics to %s every %s\n", *name, *pushURL, *pushInterval)
	}

	// The retry queue delivers deferred aux-profile traffic in the
	// background (paper §7 reconnection semantics).
	if err := svc.Retry().Start(2 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: retry queue: %v\n", err)
		return 1
	}
	defer svc.Retry().Stop()

	if *demo && !standby {
		if err := runDemo(ctx, srv, *demoName, *subsFlag, *demoInterval); err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: demo: %v\n", err)
			return 1
		}
	}

	if ctrl != nil {
		fmt.Printf("gs-server %s admission control on (subscriber %g/s burst %d, collection %g/s burst %d, bulk digest every %s)\n",
			*name, *qosSubRate, *qosSubBurst, *qosCollRate, *qosCollBurst, *qosBulkEvery)
	}
	fmt.Printf("gs-server %s listening on %s\n", *name, *addr)
	<-ctx.Done()

	// Graceful shutdown: stop accepting publishes first (close the protocol
	// listener and unregister from the directory so peers stop routing
	// here), then drain the delivery pipeline and flush the retry queue —
	// spooled aux-profile ops would otherwise wait out a full partition
	// cycle, and in-flight notifications would sit queued until the next
	// start's WAL recovery. The deferred closes then compact the mailboxes.
	fmt.Println("gs-server: shutting down — draining deliveries and flushing spooled ops")
	shCtx, shCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer shCancel()
	_ = srv.Close()
	if !standby {
		_ = gdsCli.Unregister(shCtx)
	}
	if err := svc.DrainDeliveries(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: drain on shutdown: %v (undelivered alerts stay in their mailboxes)\n", err)
	}
	if n := svc.Retry().Flush(shCtx, true); n > 0 {
		fmt.Printf("gs-server: flushed %d spooled server-to-server ops\n", n)
	}
	fmt.Println("gs-server: shutdown complete")
	return 0
}

// parseClassWeights parses "realtime:normal:bulk" WFQ weights (e.g. 8:4:1);
// the empty string selects the delivery defaults.
func parseClassWeights(s string) ([qos.NumClasses]int, error) {
	var w [qos.NumClasses]int
	if s == "" {
		return w, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != qos.NumClasses {
		return w, fmt.Errorf("bad -qos-weights %q (want realtime:normal:bulk, e.g. 8:4:1)", s)
	}
	order := []qos.Class{qos.ClassRealtime, qos.ClassNormal, qos.ClassBulk}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return w, fmt.Errorf("bad -qos-weights entry %q (want a positive integer)", p)
		}
		w[order[i]] = v
	}
	return w, nil
}

// runPromote orders the standby at addr to promote itself, then exits:
// `gs-server -promote 127.0.0.1:9002` is the operator's failover switch.
func runPromote(addr string) int {
	tr := transport.NewHTTP()
	defer func() { _ = tr.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	env, err := protocol.NewEnvelope("gs-promote", protocol.MsgReplPromote, &protocol.ReplPromote{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: promote: %v\n", err)
		return 1
	}
	if err := transport.SendOneWay(ctx, tr, addr, env); err != nil {
		fmt.Fprintf(os.Stderr, "gs-server: promote %s: %v\n", addr, err)
		return 1
	}
	fmt.Printf("standby at %s promoted\n", addr)
	return 0
}

// opsAddrs deduplicates the two ops-endpoint flags: both -metrics-addr and
// the older -stats-addr serve the identical mux, so pointing them at the
// same address must not double-bind.
func opsAddrs(addrs ...string) []string {
	var out []string
	for _, a := range addrs {
		if a == "" {
			continue
		}
		dup := false
		for _, b := range out {
			if a == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// runDemo creates the demo collection and starts the rebuild loop.
func runDemo(ctx context.Context, srv *greenstone.Server, collName, subsFlag string, interval time.Duration) error {
	cfg := collection.Config{
		Name:        collName,
		Title:       "Demo Collection",
		Public:      true,
		IndexFields: []string{"dc.Title", "dc.Creator"},
		Classifiers: []string{"dc.Title"},
	}
	for _, ref := range strings.Split(subsFlag, ",") {
		ref = strings.TrimSpace(ref)
		if ref == "" {
			continue
		}
		host, sub, ok := strings.Cut(ref, "=")
		if !ok {
			return fmt.Errorf("bad -sub entry %q (want Host=Collection)", ref)
		}
		cfg.Subs = append(cfg.Subs, collection.SubRef{Host: host, Name: sub})
	}
	if _, err := srv.AddCollection(ctx, cfg); err != nil {
		return err
	}
	build := func(round int) {
		docs := demoDocs(srv.Name(), round)
		if _, _, err := srv.Build(ctx, collName, docs); err != nil {
			fmt.Fprintf(os.Stderr, "gs-server: demo rebuild: %v\n", err)
			return
		}
		fmt.Printf("rebuilt %s.%s (round %d, %d docs)\n", srv.Name(), collName, round, len(docs))
	}
	build(0)
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		round := 1
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				build(round)
				round++
			}
		}
	}()
	return nil
}

func demoDocs(host string, round int) []*collection.Document {
	docs := make([]*collection.Document, 0, 6)
	for i := 0; i < 5; i++ {
		docs = append(docs, &collection.Document{
			ID: fmt.Sprintf("%s-doc-%d", host, i),
			Metadata: map[string][]string{
				"dc.Title":   {fmt.Sprintf("Report %d from %s", i, host)},
				"dc.Creator": {fmt.Sprintf("Author %d", i%3)},
			},
			Content: fmt.Sprintf("report %d body, revision %d, topics digital library alerting", i, round),
			MIME:    "text/plain",
		})
	}
	// One fresh document per round so subscribers see documents-added.
	docs = append(docs, &collection.Document{
		ID:       fmt.Sprintf("%s-new-%d", host, round),
		Metadata: map[string][]string{"dc.Title": {fmt.Sprintf("Bulletin %d", round)}},
		Content:  fmt.Sprintf("bulletin issued in round %d", round),
		MIME:     "text/plain",
	})
	return docs
}

// atomicBool is a tiny flag shared between the GDS registration path and the
// /readyz readiness checks.
type atomicBool struct{ v atomic.Bool }

func (b *atomicBool) set(ok bool) { b.v.Store(ok) }
func (b *atomicBool) get() bool   { return b.v.Load() }
