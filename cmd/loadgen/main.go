// Command loadgen drives the E16 scale-and-chaos soak outside the test
// suite: a zipfian subscriber population (100k–1M profiles, mixed
// primitive/composite, QoS-classed) is spread across a simulated
// deployment, rounds of zipf-topic events are published, and a chaos
// schedule — primary kills, directory-subtree partitions, lagging
// standbys, mode flips, transport fault injection — runs against the
// workload. The run repeats failure-free as a baseline; the PR 4/5
// invariants are checked against the composition and per-class delivery
// latency is evaluated against SLOs.
//
// The schedule comes from -schedule (a file in the docs/CHAOS.md text
// format), or is generated from -gen-seed; with neither, the canonical
// default schedule runs. -json writes the summary in the same layout as
// BENCH_results.json (name/iterations/ns_per_op/metrics), so bench-diff
// can compare soak runs:
//
//	go run ./cmd/loadgen -profiles 100000 -seeds 1,7,42 -json soak.json
//
// A failed invariant check exits non-zero: CI runs this as the chaos-soak
// gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/gsalert/gsalert/internal/chaos"
	"github.com/gsalert/gsalert/internal/health"
	"github.com/gsalert/gsalert/internal/sim"
)

// benchResult and benchFile mirror cmd/bench-json's output layout so soak
// summaries and benchmark results share tooling (bench-diff reads both).
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seeds       = flag.String("seeds", "1", "comma-separated run seeds (one soak per seed)")
		servers     = flag.Int("servers", 16, "alerting servers in the simulated deployment")
		rounds      = flag.Int("rounds", 12, "publish rounds")
		events      = flag.Int("events", 4, "events published per round")
		burst       = flag.Int("burst", 8, "per-subscriber burst-only quota on the observed servers")
		profiles    = flag.Int("profiles", 100_000, "live subscriber profiles (zipfian population)")
		topics      = flag.Int("topics", 500, "topic vocabulary size")
		zipfS       = flag.Float64("zipf-s", 1.07, "zipf skew (> 1)")
		composite   = flag.Float64("composite", 0.02, "fraction of the population registered as DIGEST composites")
		schedFile   = flag.String("schedule", "", "chaos schedule file (docs/CHAOS.md format); empty = canonical default")
		traceSample = flag.Float64("trace-sample", 0, "head-sampling rate in (0,1] for end-to-end event traces; emits the per-stage latency attribution table (docs/TRACING.md); 0 disables")
		genSeed     = flag.Int64("gen-seed", 0, "generate a random valid schedule from this seed instead")
		jsonOut     = flag.String("json", "", "write the summary in BENCH_results.json layout to this file")
		healthLog   = flag.String("health-log", "", "attach the health plane (docs/HEALTH.md) to the soak's QoS server, write every state transition to this file as JSON lines, and fail the run unless at least one fire→clear cycle was observed")
		flightOut   = flag.String("flight", "", "run the E19 flight-recorder gate instead of the plain soak: the logging plane and tracing are armed, the kill-primary fault must auto-capture exactly one byte-deterministic post-mortem bundle, and the bundle is written to this file (docs/LOGGING.md; multi-seed runs suffix .seed<N>)")
		quiet       = flag.Bool("q", false, "suppress the result tables (summary lines only)")
	)
	flag.Parse()

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	out := benchFile{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Pkg:    "github.com/gsalert/gsalert/cmd/loadgen",
	}
	failed := 0
	for _, seed := range seedList {
		cfg := sim.DefaultChaosSoakConfig(seed)
		cfg.Servers = *servers
		cfg.Rounds = *rounds
		cfg.EventsPerRound = *events
		cfg.Burst = *burst
		cfg.Load.Profiles = *profiles
		cfg.Load.Topics = *topics
		cfg.Load.ZipfS = *zipfS
		cfg.Load.CompositeFraction = *composite
		cfg.TraceSample = *traceSample
		cfg.Health = *healthLog != ""
		switch {
		case *schedFile != "":
			src, err := os.ReadFile(*schedFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return 2
			}
			s, err := chaos.ParseSchedule(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", *schedFile, err)
				return 2
			}
			cfg.Schedule = s
		case *genSeed != 0:
			s, err := chaos.Generate(chaos.GenConfig{
				Seed: *genSeed, Rounds: cfg.Rounds, Primary: sim.SoakReplServer,
				LinkA: "gds0", LinkB: "gds3", InjectTypePrefix: "gs.",
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return 2
			}
			cfg.Schedule = s
		default:
			cfg.Schedule = sim.DefaultSoakSchedule(cfg.Rounds, "gds3")
		}

		if *flightOut != "" {
			// E19: the soak replays under its own seed and the auto-captured
			// bundle must be a pure function of it — RunFlightSoak runs the
			// deployment twice and compares bundles byte-for-byte.
			fr, err := sim.RunFlightSoak(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: seed %d: %v\n", seed, err)
				return 1
			}
			if !*quiet {
				fmt.Println(sim.FlightSoakTable(fr).Render())
			}
			verdict := "PASS"
			if err := fr.Check(); err != nil {
				verdict = "FAIL"
				failed++
				fmt.Fprintf(os.Stderr, "loadgen: seed %d: %v\n", seed, err)
			}
			path := *flightOut
			if len(seedList) > 1 {
				path = fmt.Sprintf("%s.seed%d", *flightOut, seed)
			}
			if err := os.WriteFile(path, fr.Bundle, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return 1
			}
			fmt.Printf("loadgen: seed %d: %s — flight bundle %d records / %d components / %d traces → %s\n",
				seed, verdict, fr.DumpRecords, len(fr.DumpComponents), fr.RetainedTraces, path)
			out.Benchmarks = append(out.Benchmarks, toFlightBench(seed, fr))
			continue
		}

		r, err := sim.RunChaosSoak(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: seed %d: %v\n", seed, err)
			return 1
		}
		if !*quiet {
			fmt.Println(sim.ChaosSoakTable(r).Render())
			if len(r.Attribution) > 0 {
				fmt.Println(sim.AttributionTable(r.Attribution).Render())
			}
		}
		verdict := "PASS"
		if err := r.Check(); err != nil {
			verdict = "FAIL"
			failed++
			fmt.Fprintf(os.Stderr, "loadgen: seed %d: %v\n", seed, err)
		}
		if *healthLog != "" {
			if err := appendHealthLog(*healthLog, seed, r); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return 1
			}
			// The chaos-soak gate: the health plane must complete at least
			// one fire→clear cycle during the soak, or the rules (or the
			// engine) stopped observing the pipeline.
			if r.HealthCycles < 1 {
				verdict = "FAIL"
				failed++
				fmt.Fprintf(os.Stderr, "loadgen: seed %d: health plane observed %d transitions but no fire→clear cycle\n",
					seed, len(r.HealthTransitions))
			} else {
				fmt.Printf("loadgen: seed %d: health %d transitions, %d fire→clear cycle(s) → %s\n",
					seed, len(r.HealthTransitions), r.HealthCycles, *healthLog)
			}
		}
		fmt.Printf("loadgen: seed %d: %s — %d profiles, %d events, %d faults, %d msgs, chaos %v / baseline %v\n",
			seed, verdict, r.LiveProfiles, r.Events, len(r.Applied),
			r.Messages, r.WallChaos.Round(1e6), r.WallBaseline.Round(1e6))
		out.Benchmarks = append(out.Benchmarks, toBench(seed, r))
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
		fmt.Printf("loadgen: wrote %d run(s) to %s\n", len(out.Benchmarks), *jsonOut)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d soak run(s) failed the invariant check\n", failed, len(seedList))
		return 1
	}
	return 0
}

// toBench flattens one soak result into a bench-json row: wall time as
// ns/op, the invariant observations and per-class latency quantiles as
// custom metrics.
func toBench(seed int64, r *sim.ChaosSoakResult) benchResult {
	m := map[string]float64{
		"live_profiles":  float64(r.LiveProfiles),
		"events":         float64(r.Events),
		"faults":         float64(len(r.Applied)),
		"msgs":           float64(r.Messages),
		"blocked":        float64(r.Blocked),
		"injected_drops": float64(r.InjectedDrops),
		"inherited":      float64(r.Inherited),
		"resyncs":        float64(r.Resyncs),
		"dropped":        float64(r.PipelineDropped),
	}
	for _, s := range r.SLO {
		m[s.Class+"_p50_ms"] = float64(s.P50.Microseconds()) / 1e3
		m[s.Class+"_p99_ms"] = float64(s.P99.Microseconds()) / 1e3
	}
	// Traced runs add the attribution table: per class, the traced e2e p99
	// and each stage's share of the class's end-to-end latency.
	if len(r.HealthTransitions) > 0 {
		m["health_transitions"] = float64(len(r.HealthTransitions))
		m["health_cycles"] = float64(r.HealthCycles)
	}
	for _, a := range r.Attribution {
		m["attr_"+a.Class+"_chains"] = float64(a.Samples)
		m["attr_"+a.Class+"_e2e_p99_ms"] = float64(a.E2EP99.Microseconds()) / 1e3
		m["attr_"+a.Class+"_sum_err"] = a.SumError()
		for stage, share := range a.Share {
			m["attr_"+a.Class+"_"+stage+"_share"] = share
		}
	}
	return benchResult{
		Name:       fmt.Sprintf("SoakChaos/seed=%d", seed),
		Iterations: 1,
		NsPerOp:    float64(r.WallChaos.Nanoseconds()),
		Metrics:    m,
	}
}

// toFlightBench flattens one E19 run into a bench-json row.
func toFlightBench(seed int64, r *sim.FlightSoakResult) benchResult {
	deterministic := 0.0
	if r.Deterministic {
		deterministic = 1
	}
	return benchResult{
		Name:       fmt.Sprintf("SoakFlight/seed=%d", seed),
		Iterations: 1,
		NsPerOp:    float64(r.Wall.Nanoseconds()),
		Metrics: map[string]float64{
			"live_profiles":        float64(r.LiveProfiles),
			"events":               float64(r.Events),
			"critical_transitions": float64(r.CriticalTransitions),
			"bundle_bytes":         float64(r.BundleBytes),
			"dump_records":         float64(r.DumpRecords),
			"dump_components":      float64(len(r.DumpComponents)),
			"traced_records":       float64(r.TracedRecords),
			"resolved_records":     float64(r.ResolvedRecords),
			"retained_traces":      float64(r.RetainedTraces),
			"deterministic":        deterministic,
		},
	}
}

// appendHealthLog writes one JSON line per health state transition (plus
// the seed it came from), appending so multi-seed runs share one artifact.
func appendHealthLog(path string, seed int64, r *sim.ChaosSoakResult) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	enc := json.NewEncoder(f)
	for _, tr := range r.HealthTransitions {
		if err := enc.Encode(struct {
			Seed int64 `json:"seed"`
			health.Transition
		}{seed, tr}); err != nil {
			return err
		}
	}
	return nil
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds in %q", s)
	}
	return out, nil
}
